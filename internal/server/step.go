package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"vbrsim/internal/par"
)

// maxStepFrames bounds the per-session frame count of one step request
// (the work runs lock-held per session, like a frames read).
const maxStepFrames = 1 << 20

// maxStepReturnFrames is the tighter bound when the stepped frames are
// returned in the JSON response body rather than discarded.
const maxStepReturnFrames = 1 << 16

// StepRequest is the POST /v1/streams/step body.
type StepRequest struct {
	// IDs lists the sessions to advance, in response order.
	IDs []string `json:"ids"`
	// N is the frame count each listed session advances by.
	N int `json:"n"`
	// IncludeFrames returns the generated frames per session (bounded by
	// maxStepReturnFrames); when false the sessions advance positions only,
	// which is the cheap bulk-warm path.
	IncludeFrames bool `json:"include_frames,omitempty"`
}

// StepResult is one session's outcome in the step response.
type StepResult struct {
	ID    string `json:"id"`
	Start int    `json:"start"` // position before the step
	Pos   int    `json:"pos"`   // position after the step
	// Frames carries the stepped frames when requested.
	Frames []float64 `json:"frames,omitempty"`
	// Gone marks a session that was deleted or evicted between the
	// request's atomic validation and this session's turn in the batch; it
	// did not advance.
	Gone bool `json:"gone,omitempty"`
}

// handleStreamStep advances many sessions at once: the batched-stepping
// entry point for simulation drivers. Validation is atomic — every listed
// session must exist before any session moves — then the whole fleet fans
// out across StepWorkers via par.ForChunks: each worker owns one sticky
// contiguous run of the request's ID list, each session advancing under
// its own lock. The worker→range mapping depends only on (workers, fleet
// size), so a driver stepping the same fleet every round lands each
// session on the same worker, keeping its synthesis arena warm in that
// worker's cache instead of bouncing between cores. Determinism is per
// session: a session's frames depend only on its spec, seed, and
// cumulative position, never on fleet composition, worker count, or
// scheduling.
func (s *Server) handleStreamStep(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req StepRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("need at least one session id"))
		return
	}
	if req.N <= 0 {
		httpError(w, http.StatusBadRequest, errors.New("need n > 0 frames"))
		return
	}
	limit := maxStepFrames
	if req.IncludeFrames {
		limit = maxStepReturnFrames
	}
	if req.N > limit {
		httpError(w, http.StatusBadRequest, fmt.Errorf("n=%d exceeds the per-step limit %d", req.N, limit))
		return
	}
	sessions := make([]*session, len(req.IDs))
	for i, id := range req.IDs {
		ss, ok := s.getSession(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("%w: %s", errNoSession, id))
			return
		}
		sessions[i] = ss
	}

	results := make([]StepResult, len(sessions))
	workers := par.Workers(s.opt.StepWorkers, len(sessions))
	par.ForChunks(workers, len(sessions), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ss := sessions[i]
			ss.mu.Lock()
			if ss.closed {
				ss.mu.Unlock()
				results[i] = StepResult{ID: ss.id, Start: -1, Pos: -1, Gone: true}
				continue
			}
			res := StepResult{ID: ss.id, Start: ss.stream.Pos()}
			// The statmon tap sees stepped frames too (same zero-copy,
			// position-aware contract as the frames path); the sampled
			// counter is atomic, so workers feed it without coordination.
			if req.IncludeFrames {
				res.Frames = make([]float64, req.N)
				ss.stream.Fill(res.Frames)
				if ss.mon.Observe(int64(res.Start), res.Frames) {
					s.metrics.statmonSampled.Add(float64(req.N))
				}
			} else {
				var buf [streamChunk]float64
				for left, pos := req.N, res.Start; left > 0; {
					c := left
					if c > streamChunk {
						c = streamChunk
					}
					ss.stream.Fill(buf[:c])
					if ss.mon.Observe(int64(pos), buf[:c]) {
						s.metrics.statmonSampled.Add(float64(c))
					}
					left -= c
					pos += c
				}
			}
			res.Pos = ss.stream.Pos()
			ss.served += uint64(req.N)
			ss.mu.Unlock()
			results[i] = res
		}
	})
	advanced := 0
	for i := range results {
		if !results[i].Gone {
			advanced++
		}
	}
	s.metrics.framesStreamed.Add(float64(advanced * req.N))
	writeJSON(w, http.StatusOK, results)
}
