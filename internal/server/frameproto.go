package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// The x-vbrsim-frames wire format is the length-prefixed binary frame
// protocol served next to NDJSON and the raw float64 stream. A response
// body is a sequence of records:
//
//	uint32 LE  count      number of frames in this record (1..MaxFrameRecord)
//	count × 8  payload    the frames, float64 little-endian
//
// followed by one terminator record with count == 0 when the server has
// written every requested frame. The terminator lets a client distinguish
// a complete response from a connection that died mid-stream: raw float64
// bodies (application/octet-stream) are indistinguishable from truncated
// ones at any 8-byte boundary, records are not. Frames inside a record are
// bit-exact: the encoding round-trips NaN payloads and signed zeros.
//
// Records are bounded so a decoder never trusts an attacker-controlled
// prefix: a count above MaxFrameRecord is a protocol error, not an
// allocation request.

// ContentTypeFrames is the MIME type of the length-prefixed binary frame
// protocol, negotiated via the Accept header or format=frames.
const ContentTypeFrames = "application/x-vbrsim-frames"

// MaxFrameRecord caps the frame count of one record. The server writes
// records of at most streamChunk frames; the decoder tolerates up to this
// bound so the chunk size can grow without a protocol break.
const MaxFrameRecord = 4096

// frameRecordHeader is the record length prefix size in bytes.
const frameRecordHeader = 4

// Frame-protocol decode errors. ErrFrameTruncated marks a body that ended
// without a terminator record; ErrFrameOversized a record length prefix
// beyond MaxFrameRecord.
var (
	ErrFrameTruncated = errors.New("vbrsim-frames: stream truncated before terminator record")
	ErrFrameOversized = fmt.Errorf("vbrsim-frames: record exceeds %d frames", MaxFrameRecord)
)

// AppendFrameRecord appends one record carrying frames to dst and returns
// the extended slice. len(frames) must be in 1..MaxFrameRecord.
func AppendFrameRecord(dst []byte, frames []float64) []byte {
	if len(frames) == 0 || len(frames) > MaxFrameRecord {
		panic(fmt.Sprintf("server: frame record of %d frames (want 1..%d)", len(frames), MaxFrameRecord))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(frames)))
	for _, v := range frames {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// AppendFrameTrailer appends the terminator record (count 0).
func AppendFrameTrailer(dst []byte) []byte {
	return binary.LittleEndian.AppendUint32(dst, 0)
}

// frameBufPool recycles per-connection encode buffers sized for one full
// record, so steady-state streaming allocates nothing per chunk.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, frameRecordHeader+streamChunk*8)
		return &b
	},
}

// FrameReader decodes an x-vbrsim-frames body. It is not safe for
// concurrent use.
type FrameReader struct {
	r    io.Reader
	buf  []byte // carries one record payload
	pos  int    // consumed bytes of buf
	done bool   // terminator record seen
}

// NewFrameReader wraps r for record-by-record decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Read fills out with decoded frames, returning the count. It returns
// io.EOF (with n == 0) after the terminator record, ErrFrameTruncated when
// the body ends mid-record or before any terminator, and ErrFrameOversized
// on a length prefix beyond MaxFrameRecord.
func (fr *FrameReader) Read(out []float64) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	n := 0
	for n < len(out) {
		if fr.pos == len(fr.buf) {
			if fr.done {
				break
			}
			if err := fr.fill(); err != nil {
				if err == io.EOF && n > 0 {
					// Terminator mid-call: report the decoded frames now,
					// io.EOF on the next call.
					break
				}
				return n, err
			}
		}
		for n < len(out) && fr.pos < len(fr.buf) {
			out[n] = math.Float64frombits(binary.LittleEndian.Uint64(fr.buf[fr.pos:]))
			fr.pos += 8
			n++
		}
	}
	if n == 0 && fr.done {
		return 0, io.EOF
	}
	return n, nil
}

// ReadAll decodes every frame until the terminator record.
func (fr *FrameReader) ReadAll() ([]float64, error) {
	var out []float64
	buf := make([]float64, 512)
	for {
		n, err := fr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}

// fill reads the next record into fr.buf; io.EOF means the terminator.
func (fr *FrameReader) fill() error {
	var hdr [frameRecordHeader]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return ErrFrameTruncated
	}
	count := binary.LittleEndian.Uint32(hdr[:])
	if count == 0 {
		fr.done = true
		return io.EOF
	}
	if count > MaxFrameRecord {
		return ErrFrameOversized
	}
	need := int(count) * 8
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	fr.buf = fr.buf[:need]
	fr.pos = 0
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return ErrFrameTruncated
	}
	return nil
}
