package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"vbrsim/internal/modelspec"
)

// TestShardedRegistryChurnStress hammers the sharded registry from 64
// goroutines doing the full session lifecycle — create (streams and
// trunks), frames in every encoding, seek, batched step, delete — while
// the idle evictor sweeps concurrently. Run under -race (scripts/ci.sh
// does) it proves the shard/evictor/admission interplay is data-race-free;
// the invariants checked at the end prove no session is lost or
// double-closed and no accounting leaks:
//
//   - every created session is eventually deleted or evicted (404 on the
//     final delete pass is fine; anything else is a lost session),
//   - the registry count, admission cost, and active-sessions gauge all
//     drain to zero,
//   - the block-engine arena gauge returns to its pre-test baseline (a
//     double-close would underflow it, a missed close would leave residue).
func TestShardedRegistryChurnStress(t *testing.T) {
	s, ts := newTestServer(t, Options{
		MaxSessions:   96,
		Shards:        8,
		IdleTimeout:   60 * time.Millisecond,
		EvictInterval: 15 * time.Millisecond,
	})
	arenaBaseline := arenaBytesGauge(t, ts.URL)

	const goroutines = 64
	iters := 24
	if testing.Short() {
		iters = 8
	}

	// The shared id pool: creators append, every op samples, the final
	// pass deletes whatever survived. Sessions may vanish under any user
	// (delete race, eviction), so 404 and step-Gone are normal outcomes.
	var (
		poolMu sync.Mutex
		pool   []string
	)
	addID := func(id string) {
		poolMu.Lock()
		pool = append(pool, id)
		poolMu.Unlock()
	}
	sampleIDs := func(rng *rand.Rand, n int) []string {
		poolMu.Lock()
		defer poolMu.Unlock()
		if len(pool) == 0 {
			return nil
		}
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, pool[rng.Intn(len(pool))])
		}
		return ids
	}

	paper := modelspec.Paper()
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			fail := func(format string, args ...any) {
				select {
				case errCh <- fmt.Errorf(format, args...):
				default:
				}
			}
			for it := 0; it < iters; it++ {
				switch op := rng.Intn(10); {
				case op < 3: // create a cheap TES stream
					spec := tesTestSpec(uint64(g*1000 + it))
					resp := postJSONNoFatal(ts.URL+"/v1/streams", &spec)
					if resp == nil {
						fail("g%d: create failed", g)
						return
					}
					var info SessionInfo
					err := decodeBody(resp, &info)
					switch {
					case resp.StatusCode == http.StatusCreated && err == nil:
						addID(info.ID)
					case resp.StatusCode == http.StatusTooManyRequests:
					default:
						fail("g%d: create: HTTP %d err %v", g, resp.StatusCode, err)
						return
					}
				case op == 3: // create a block-engine stream (arena accounting)
					spec := paperSpec(uint64(g*1000 + it))
					spec.Engine = modelspec.EngineBlock
					resp := postJSONNoFatal(ts.URL+"/v1/streams", &spec)
					if resp == nil {
						fail("g%d: block create failed", g)
						return
					}
					var info SessionInfo
					err := decodeBody(resp, &info)
					switch {
					case resp.StatusCode == http.StatusCreated && err == nil:
						addID(info.ID)
					case resp.StatusCode == http.StatusTooManyRequests:
					default:
						fail("g%d: block create: HTTP %d err %v", g, resp.StatusCode, err)
						return
					}
				case op == 4: // create a small trunk
					resp := postJSONNoFatal(ts.URL+"/v1/trunks", &modelspec.TrunkSpec{
						Seed: uint64(g*1000 + it + 1),
						Components: []modelspec.TrunkComponent{
							{Count: 2, Spec: modelspec.Spec{ACF: paper.ACF, Marginal: paper.Marginal}},
						},
					})
					if resp == nil {
						fail("g%d: trunk create failed", g)
						return
					}
					var info SessionInfo
					err := decodeBody(resp, &info)
					switch {
					case resp.StatusCode == http.StatusCreated && err == nil:
						addID(info.ID)
					case resp.StatusCode == http.StatusTooManyRequests:
					default:
						fail("g%d: trunk create: HTTP %d err %v", g, resp.StatusCode, err)
						return
					}
				case op < 7: // frames read, random encoding, sometimes a seek
					ids := sampleIDs(rng, 1)
					if ids == nil {
						continue
					}
					url := fmt.Sprintf("%s/v1/streams/%s/frames?n=%d", ts.URL, ids[0], 1+rng.Intn(48))
					if rng.Intn(3) == 0 {
						url += "&from=" + strconv.Itoa(rng.Intn(64))
					}
					switch rng.Intn(3) {
					case 0:
						url += "&format=frames"
					case 1:
						url += "&format=binary"
					}
					resp, err := http.Get(url)
					if err != nil {
						fail("g%d: frames: %v", g, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						fail("g%d: frames: HTTP %d", g, resp.StatusCode)
						return
					}
				case op < 9: // batched step over a random handful
					ids := sampleIDs(rng, 1+rng.Intn(4))
					if ids == nil {
						continue
					}
					resp := postJSONNoFatal(ts.URL+"/v1/streams/step",
						&StepRequest{IDs: ids, N: 1 + rng.Intn(32), IncludeFrames: rng.Intn(2) == 0})
					if resp == nil {
						fail("g%d: step failed", g)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						fail("g%d: step: HTTP %d", g, resp.StatusCode)
						return
					}
				default: // delete
					ids := sampleIDs(rng, 1)
					if ids == nil {
						continue
					}
					req, err := http.NewRequest("DELETE", ts.URL+"/v1/streams/"+ids[0], nil)
					if err != nil {
						fail("g%d: delete: %v", g, err)
						return
					}
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						fail("g%d: delete: %v", g, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
						fail("g%d: delete: HTTP %d", g, resp.StatusCode)
						return
					}
				}
				if rng.Intn(4) == 0 {
					// Let some sessions cross the idle timeout so the evictor
					// races real traffic, not an empty registry.
					time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Drain: delete everything ever created. 404 means a concurrent delete
	// or the evictor got it first — both fine; any other status is a bug.
	for _, id := range pool {
		req, err := http.NewRequest("DELETE", ts.URL+"/v1/streams/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("drain delete %s: HTTP %d", id, resp.StatusCode)
		}
	}

	if got := s.reg.count.Load(); got != 0 {
		t.Errorf("registry count after drain = %d, want 0 (lost or leaked sessions)", got)
	}
	if got := len(s.reg.list()); got != 0 {
		t.Errorf("registry list has %d sessions after drain, want 0", got)
	}
	if got := s.adm.usedCost(); got != 0 {
		t.Errorf("admission cost after drain = %v, want 0", got)
	}
	if got := arenaBytesGauge(t, ts.URL); got != arenaBaseline {
		t.Errorf("arena bytes after drain = %v, want baseline %v (missed or double close)", got, arenaBaseline)
	}
	scrape := scrapeMetrics(t, ts.URL)
	if !bytes.Contains(scrape, []byte("vbrsim_sessions_active 0")) {
		t.Error("sessions_active gauge did not drain to 0")
	}
}

// arenaBytesGauge scrapes the block-engine arena gauge (a process-global
// atomic, so stress invariants compare against a recorded baseline).
func arenaBytesGauge(t *testing.T, base string) float64 {
	t.Helper()
	for _, line := range bytes.Split(scrapeMetrics(t, base), []byte("\n")) {
		rest, ok := bytes.CutPrefix(line, []byte("vbrsim_streamblock_arena_bytes "))
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(string(bytes.TrimSpace(rest)), 64)
		if err != nil {
			t.Fatalf("bad arena gauge line %q: %v", line, err)
		}
		return v
	}
	t.Fatal("vbrsim_streamblock_arena_bytes not in the exposition")
	return 0
}
