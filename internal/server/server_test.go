package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vbrsim/internal/modelspec"
)

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func paperSpec(seed uint64) modelspec.Spec {
	s := modelspec.Paper()
	s.Seed = seed
	return s
}

func createStream(t *testing.T, base string, spec modelspec.Spec) SessionInfo {
	t.Helper()
	resp := postJSON(t, base+"/v1/streams", &spec)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("create stream: %d %s", resp.StatusCode, body)
	}
	return decodeJSON[SessionInfo](t, resp)
}

func readNDJSON(t *testing.T, url string) []float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("frames: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var out []float64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamMatchesOfflineAndResumes(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := paperSpec(1234)
	info := createStream(t, ts.URL, spec)
	if info.Seed != 1234 || info.Pos != 0 {
		t.Fatalf("session info: %+v", info)
	}

	got := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=300", ts.URL, info.ID))
	if len(got) != 300 {
		t.Fatalf("got %d frames, want 300", len(got))
	}
	want, err := spec.Frames(context.Background(), 0, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("frame %d: server %v, offline %v", i, got[i], want[i])
		}
	}

	// A second read continues where the first stopped.
	got2 := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=200", ts.URL, info.ID))
	for i := range got2 {
		if got2[i] != want[300+i] {
			t.Fatalf("continued frame %d: %v, want %v", 300+i, got2[i], want[300+i])
		}
	}

	// An explicit from= replays a past range (reconnect semantics).
	replay := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=100&from=100", ts.URL, info.ID))
	for i := range replay {
		if replay[i] != want[100+i] {
			t.Fatalf("replayed frame %d: %v, want %v", 100+i, replay[i], want[100+i])
		}
	}
}

func TestStreamBinaryEncoding(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := paperSpec(77)
	info := createStream(t, ts.URL, spec)

	req, _ := http.NewRequest("GET", fmt.Sprintf("%s/v1/streams/%s/frames?n=64", ts.URL, info.ID), nil)
	req.Header.Set("Accept", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 64*8 {
		t.Fatalf("binary body %d bytes, want %d", len(raw), 64*8)
	}
	want, err := spec.Frames(context.Background(), 0, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		if v != want[i] {
			t.Fatalf("binary frame %d: %v, want %v", i, v, want[i])
		}
	}
}

func TestSessionCapAndDelete(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSessions: 2})
	a := createStream(t, ts.URL, paperSpec(1))
	createStream(t, ts.URL, paperSpec(2))

	resp := postJSON(t, ts.URL+"/v1/streams", paperSpec(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/streams/"+a.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}

	// Capacity freed: creation succeeds again.
	createStream(t, ts.URL, paperSpec(4))

	if resp, err := http.Get(ts.URL + "/v1/streams/" + a.ID); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("deleted session GET: %d", resp.StatusCode)
		}
	}
}

func TestAutoSeedDeterministicDerivation(t *testing.T) {
	_, ts := newTestServer(t, Options{Seed: 9})
	spec := modelspec.Paper() // Seed 0: server assigns
	a := createStream(t, ts.URL, spec)
	b := createStream(t, ts.URL, spec)
	if a.Seed == 0 || b.Seed == 0 {
		t.Fatalf("auto seeds not assigned: %+v %+v", a, b)
	}
	if a.Seed == b.Seed {
		t.Fatalf("distinct sessions got the same auto seed %d", a.Seed)
	}
	if a.Seed != deriveSeed(9, 1) || b.Seed != deriveSeed(9, 2) {
		t.Fatalf("seed derivation not deterministic: %d %d", a.Seed, b.Seed)
	}
}

func TestMetricsPlanCacheHitsAcrossStreams(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	createStream(t, ts.URL, paperSpec(100))
	// The second stream for the same spec must hit the shared plan cache.
	createStream(t, ts.URL, paperSpec(101))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, name := range []string{
		"vbrsim_sessions_active 2",
		"vbrsim_frames_streamed_total",
		"vbrsim_plan_cache_hits_total",
		"vbrsim_plan_cache_misses_total",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("metrics missing %q:\n%s", name, text)
		}
	}
	hits := metricValue(t, text, "vbrsim_plan_cache_hits_total")
	if hits < 1 {
		t.Fatalf("plan cache hits = %v after second stream, want >= 1", hits)
	}
}

func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found:\n%s", name, text)
	return 0
}

func waitJob(t *testing.T, base, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		job := decodeJSON[Job](t, resp)
		if job.Status == "done" || job.Status == "failed" {
			return job
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

func TestJobQsim(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := paperSpec(5)
	for _, kind := range []string{"qsim-mc", "qsim-is"} {
		resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
			Kind: kind, Spec: &spec,
			Utilization: 0.8, Buffer: 5, Horizon: 50, Replications: 50, Seed: 2,
		})
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("%s submit: %d %s", kind, resp.StatusCode, body)
		}
		job := decodeJSON[Job](t, resp)
		job = waitJob(t, ts.URL, job.ID)
		if job.Status != "done" {
			t.Fatalf("%s job: %+v", kind, job)
		}
		res, ok := job.Result.(map[string]any)
		if !ok {
			t.Fatalf("%s result type %T", kind, job.Result)
		}
		p, ok := res["p"].(float64)
		if !ok || p < 0 || p > 1 {
			t.Fatalf("%s estimate p = %v", kind, res["p"])
		}
	}
}

func TestJobFit(t *testing.T) {
	if testing.Short() {
		t.Skip("fit job in -short mode")
	}
	_, ts := newTestServer(t, Options{})
	spec := paperSpec(6)
	trace, err := spec.Frames(context.Background(), 0, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kind: "fit", Trace: trace, Seed: 1})
	job := decodeJSON[Job](t, resp)
	job = waitJob(t, ts.URL, job.ID)
	if job.Status != "done" {
		t.Fatalf("fit job: %+v", job)
	}
	data, err := json.Marshal(job.Result)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := modelspec.Parse(data)
	if err != nil {
		t.Fatalf("fit result is not a valid spec: %v", err)
	}
	if fitted.H <= 0.5 || fitted.H >= 1 {
		t.Fatalf("fitted H = %v", fitted.H)
	}
}

func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kind: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// qsim without a spec fails at run time, visible when polled.
	resp = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kind: "qsim-mc", Buffer: 5})
	job := decodeJSON[Job](t, resp)
	job = waitJob(t, ts.URL, job.ID)
	if job.Status != "failed" || job.Error == "" {
		t.Fatalf("spec-less qsim: %+v", job)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	createStream(t, ts.URL, paperSpec(8))
	s.BeginDrain()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz while draining: %d", resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/streams", paperSpec(9))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream create while draining: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kind: "fit"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job submit while draining: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Existing sessions still stream during drain.
	s2, _ := s.getSession("s1")
	if s2 == nil {
		t.Fatal("session lost on drain")
	}
}

// Submissions racing a drain must either enqueue or get errDraining /
// errQueueFull — never panic on a send to the closed queue channel.
func TestJobSubmitDrainRace(t *testing.T) {
	s := New(Options{JobQueueDepth: 4})
	defer s.Close()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				_, err := s.jobs.submit(JobRequest{Kind: "qsim-mc"})
				if errors.Is(err, errDraining) {
					return
				}
			}
		}()
	}
	close(start)
	s.jobs.drain()
	wg.Wait()
	if _, err := s.jobs.submit(JobRequest{Kind: "qsim-mc"}); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain submit: %v, want errDraining", err)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	info := createStream(t, ts.URL, paperSpec(10))

	for _, url := range []string{
		ts.URL + "/v1/streams/" + info.ID + "/frames",                    // missing n
		ts.URL + "/v1/streams/" + info.ID + "/frames?n=-5",               // bad n
		ts.URL + "/v1/streams/" + info.ID + "/frames?n=1&from=-2",        // bad from
		ts.URL + "/v1/streams/" + info.ID + "/frames?n=1&from=999999999", // seek too far ahead
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", url, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/streams/nope/frames?n=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %d", resp.StatusCode)
	}

	// Invalid spec rejected with 400.
	bad := postJSON(t, ts.URL+"/v1/streams", map[string]any{"acf": map[string]any{"weights": []float64{1, 2}, "rates": []float64{0.1}, "l": 0.9, "beta": 0.2, "knee": 60}})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d", bad.StatusCode)
	}
	bad.Body.Close()
}
