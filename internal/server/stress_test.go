package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"testing"
)

// getFrames fetches frames?n=&from= and parses the NDJSON body, returning
// errors instead of calling t.Fatal so it is safe from stress goroutines.
func getFrames(base, id string, from, n int) ([]float64, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/streams/%s/frames?n=%d&from=%d", base, id, n, from))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("frames: %d %s", resp.StatusCode, body)
	}
	var out []float64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			return nil, fmt.Errorf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) != n {
		return nil, fmt.Errorf("got %d frames, want %d", len(out), n)
	}
	return out, nil
}

func postJSONNoFatal(url string, body any) *http.Response {
	data, err := json.Marshal(body)
	if err != nil {
		return nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil
	}
	return resp
}

func decodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestConcurrentSeekReadStress hammers a single session with interleaved
// reads and seeks from many goroutines while other goroutines churn
// sessions (create/read/delete), and verifies every returned frame is
// bit-identical to the offline Spec.Frames reference. The session mutex
// serializes the underlying Stream, so each response must be an exact
// contiguous window of the deterministic sequence no matter how requests
// interleave. Run under -race (as scripts/ci.sh does) this also proves the
// handler paths are data-race-free.
func TestConcurrentSeekReadStress(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSessions: 64})

	const seed = 20250805
	spec := paperSpec(seed)
	info := createStream(t, ts.URL, spec)

	// Offline reference for the whole window the stress readers touch.
	refSpec := paperSpec(seed)
	const window = 2048
	want, err := refSpec.Frames(context.Background(), 0, window, 0)
	if err != nil {
		t.Fatal(err)
	}

	workers := 8
	iters := 30
	if testing.Short() {
		workers, iters = 4, 10
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers*2)

	// Seek/read workers: random offsets within the window, all on the ONE
	// shared session.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				from := rnd.Intn(window - 64)
				n := 1 + rnd.Intn(64)
				if from+n > window {
					n = window - from
				}
				got, err := getFrames(ts.URL, info.ID, from, n)
				if err != nil {
					errc <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				for j, v := range got {
					if math.Float64bits(v) != math.Float64bits(want[from+j]) {
						errc <- fmt.Errorf("worker %d iter %d: frame %d = %v, offline reference %v",
							w, i, from+j, v, want[from+j])
						return
					}
				}
			}
		}(w)
	}

	// Churn workers: create, read a little, delete — session lifecycle
	// under load must not disturb the shared session above.
	for w := 0; w < workers/2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters/2; i++ {
				churnSpec := paperSpec(uint64(1000*w + i + 1))
				resp := postJSONNoFatal(ts.URL+"/v1/streams", &churnSpec)
				if resp == nil {
					errc <- fmt.Errorf("churn %d: create failed", w)
					return
				}
				if resp.StatusCode != http.StatusCreated {
					resp.Body.Close()
					errc <- fmt.Errorf("churn %d: create status %d", w, resp.StatusCode)
					return
				}
				var churn SessionInfo
				if err := decodeBody(resp, &churn); err != nil {
					errc <- fmt.Errorf("churn %d: %w", w, err)
					return
				}
				if _, err := getFrames(ts.URL, churn.ID, 0, 16); err != nil {
					errc <- fmt.Errorf("churn %d read: %w", w, err)
					return
				}
				req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+churn.ID, nil)
				if err != nil {
					errc <- err
					return
				}
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					errc <- fmt.Errorf("churn %d delete: %w", w, err)
					return
				}
				dresp.Body.Close()
			}
		}(w)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the storm, the shared session still serves the exact sequence
	// from the start.
	got, err := getFrames(ts.URL, info.ID, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("post-stress frame %d = %v, want %v", i, v, want[i])
		}
	}
}
