package server

import (
	"io"
	"net/http"
	"sort"
	"testing"

	"vbrsim/internal/modelspec"
)

// TestEstimateStreamCost pins the per-engine cost table and the plan-size
// factor: costs are spec-only (no plan is built), so these are pure.
func TestEstimateStreamCost(t *testing.T) {
	composite := func(knee int) modelspec.ACFSpec {
		return modelspec.ACFSpec{Kind: "composite", Knee: knee}
	}
	cases := []struct {
		name string
		spec modelspec.Spec
		want float64
	}{
		{"tes", modelspec.Spec{Engine: modelspec.EngineTES}, 1},
		{"gop", modelspec.Spec{Engine: modelspec.EngineGOP}, 2},
		{"block no knee", modelspec.Spec{Engine: modelspec.EngineBlock}, 4},
		{"block knee 256", modelspec.Spec{Engine: modelspec.EngineBlock, ACF: composite(256)}, 8},
		{"truncated no knee", modelspec.Spec{Engine: modelspec.EngineTruncated}, 8},
		{"truncated default engine", modelspec.Spec{}, 8},
		{"truncated knee 512", modelspec.Spec{Engine: modelspec.EngineTruncated, ACF: composite(512)}, 24},
		{"paper model", modelspec.Paper(), 8 * (1 + float64(modelspec.Paper().ACF.Knee)/kneeCostUnit)},
	}
	for _, tc := range cases {
		if got := estimateStreamCost(&tc.spec); got != tc.want {
			t.Errorf("%s: cost %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestEstimateTrunkCost checks the trunk score: fixed base plus every
// flattened source at its own engine cost.
func TestEstimateTrunkCost(t *testing.T) {
	spec := modelspec.TrunkSpec{
		Components: []modelspec.TrunkComponent{
			{Count: 3, Spec: modelspec.Spec{Engine: modelspec.EngineTES}},
			{Count: 2, Spec: modelspec.Spec{Engine: modelspec.EngineBlock}},
		},
	}
	want := costTrunkBase + 3*costTES + 2*costBlock
	if got := estimateTrunkCost(&spec); got != want {
		t.Fatalf("trunk cost %v, want %v", got, want)
	}
	empty := modelspec.TrunkSpec{}
	if got := estimateTrunkCost(&empty); got != costTrunkBase {
		t.Fatalf("empty trunk cost %v, want %v", got, costTrunkBase)
	}
}

// TestAdmissionReserveRelease walks the gate through its rejection ladder:
// budget, pressure, cap, drain — and checks release restores capacity.
func TestAdmissionReserveRelease(t *testing.T) {
	a := newAdmission(100, 3)

	if err := a.reserve(60); err != nil {
		t.Fatal(err)
	}
	// 60/100 used: below the pressure knee, so anything that fits the
	// remaining 40 is admitted.
	if err := a.reserve(39); err != nil {
		t.Fatalf("cost 39 with 40 remaining rejected: %v", err)
	}
	// 99/100 used, over the knee: remaining 1, pressure limit 0.5.
	if err := a.reserve(0.4); err != nil {
		t.Fatalf("cost 0.4 under the pressure limit rejected: %v", err)
	}
	// Session cap (3) is absolute regardless of cost.
	if err := a.reserve(0.01); err == nil {
		t.Fatal("4th session admitted past the cap")
	} else if ae, _ := asAdmitError(err); ae == nil || ae.reason != rejectCap {
		t.Fatalf("cap rejection reason = %v", err)
	}
	a.release(0.4)
	// Budget rejection: cost beyond what remains.
	if err := a.reserve(2); err == nil {
		t.Fatal("cost 2 with 1 remaining admitted")
	} else if ae, _ := asAdmitError(err); ae == nil || ae.reason != rejectBudget {
		t.Fatalf("budget rejection reason = %v", err)
	}
	// Pressure rejection: fits the budget but over half the remainder.
	if err := a.reserve(0.9); err == nil {
		t.Fatal("cost 0.9 over the pressure limit admitted")
	} else if ae, _ := asAdmitError(err); ae == nil || ae.reason != rejectPressure {
		t.Fatalf("pressure rejection reason = %v", err)
	}
	a.release(60)
	a.release(39)
	if got := a.usedCost(); got != 0 {
		t.Fatalf("used cost after full release = %v, want 0", got)
	}
	a.beginDrain()
	if err := a.reserve(1); err == nil {
		t.Fatal("reserve admitted while draining")
	} else if ae, _ := asAdmitError(err); ae == nil || ae.reason != rejectDrain {
		t.Fatalf("drain rejection reason = %v", err)
	}
}

// TestAdmissionShedOrderMonotone is the shed-order property: at any budget
// fill level, admissibility is downward-closed in cost — if a request is
// admitted, every cheaper request would have been admitted too. This is
// what makes cost-aware shedding fair: pressure sheds the expensive tail,
// never a cheap request ahead of a dearer one.
func TestAdmissionShedOrderMonotone(t *testing.T) {
	costs := []float64{0.1, 0.5, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	sort.Float64s(costs)
	for _, used := range []float64{0, 40, 70, 76, 90, 99, 99.9} {
		a := newAdmission(100, 1000)
		if used > 0 {
			if err := a.reserve(used); err != nil {
				t.Fatalf("seeding used=%v: %v", used, err)
			}
		}
		admitted := make([]bool, len(costs))
		for i, c := range costs {
			// Probe admissibility at this state: reserve, record, undo.
			if err := a.reserve(c); err == nil {
				admitted[i] = true
				a.release(c)
			}
		}
		for i := 1; i < len(costs); i++ {
			if admitted[i] && !admitted[i-1] {
				t.Fatalf("used=%v: cost %v admitted but cheaper %v rejected — shed order is not monotone",
					used, costs[i], costs[i-1])
			}
		}
	}
}

// TestAdmissionReleasePanicsOnNegative pins the accounting tripwire: a
// double release is a bug, not a state to limp through.
func TestAdmissionReleasePanicsOnNegative(t *testing.T) {
	a := newAdmission(10, 10)
	if err := a.reserve(1); err != nil {
		t.Fatal(err)
	}
	a.release(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	a.release(1)
}

// TestRejectedCreateLeavesNoState is the regression test for the leak
// class PR 7 fixed and this refactor must preserve: a rejected or failed
// create never leaves a session, a cost reservation, or engine accounting
// behind, for both streams and trunks.
func TestRejectedCreateLeavesNoState(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxSessions: 1})

	kept := createStream(t, ts.URL, tesTestSpec(1))
	usedAfterFirst := s.adm.usedCost()

	// Cap rejection: 429 with Retry-After, reason-labeled counter, and no
	// residue in the registry or the budget.
	resp := postJSON(t, ts.URL+"/v1/streams", tesTestSpec(2))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	if got := s.adm.usedCost(); got != usedAfterFirst {
		t.Fatalf("used cost %v after rejection, want %v", got, usedAfterFirst)
	}
	if got := s.reg.count.Load(); got != 1 {
		t.Fatalf("registry has %d sessions after rejection, want 1", got)
	}

	// Trunk rejection takes the same path.
	paper := modelspec.Paper()
	resp = postJSON(t, ts.URL+"/v1/trunks", &modelspec.TrunkSpec{
		Seed: 3,
		Components: []modelspec.TrunkComponent{
			{Count: 2, Spec: modelspec.Spec{ACF: paper.ACF, Marginal: paper.Marginal}},
		},
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap trunk create: %d, want 429", resp.StatusCode)
	}
	if got := s.adm.usedCost(); got != usedAfterFirst {
		t.Fatalf("used cost %v after trunk rejection, want %v", got, usedAfterFirst)
	}

	// A failed open (spec that validates at the HTTP layer but dies in the
	// engine) releases its reservation too: deleting the survivor must take
	// the budget back to zero exactly.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/streams/"+kept.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if got := s.adm.usedCost(); got != 0 {
		t.Fatalf("used cost %v after deleting every session, want 0", got)
	}
	// And with the slot free, creation works again — nothing was poisoned.
	createStream(t, ts.URL, tesTestSpec(4))
}

// TestAdmissionBudgetShedsTrunks checks cost-aware shedding end to end: a
// budget sized for cheap streams rejects an expensive superposition with
// 429/budget while TES streams keep landing.
func TestAdmissionBudgetShedsTrunks(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxSessions: 64, MaxCost: 20})

	paper := modelspec.Paper()
	bigTrunk := &modelspec.TrunkSpec{
		Seed: 5,
		Components: []modelspec.TrunkComponent{
			{Count: 8, Spec: modelspec.Spec{ACF: paper.ACF, Marginal: paper.Marginal}},
		},
	}
	if estimateTrunkCost(bigTrunk) <= 20 {
		t.Fatalf("test trunk cost %v not over the %v budget", estimateTrunkCost(bigTrunk), 20.0)
	}
	resp := postJSON(t, ts.URL+"/v1/trunks", bigTrunk)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget trunk: %d, want 429", resp.StatusCode)
	}
	// Cheap streams still land after the expensive rejection.
	for i := 0; i < 5; i++ {
		createStream(t, ts.URL, tesTestSpec(uint64(10+i)))
	}
	if got := s.reg.count.Load(); got != 5 {
		t.Fatalf("registry has %d sessions, want 5", got)
	}
}
