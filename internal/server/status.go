package server

import (
	"net/http"
	"time"

	"vbrsim/internal/statmon"
)

// SessionStats is the GET /v1/sessions/{id}/stats response: the session's
// identity plus the live monitor snapshot. Monitored is false (and Stats
// absent) when statmon is disabled.
type SessionStats struct {
	ID        string            `json:"id"`
	Name      string            `json:"name"`
	Kind      string            `json:"kind,omitempty"`
	Monitored bool              `json:"monitored"`
	Stats     *statmon.Snapshot `json:"stats,omitempty"`
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.getSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	ss.mu.Lock()
	mon, closed := ss.mon, ss.closed
	out := SessionStats{ID: ss.id, Name: ss.name, Kind: ss.kind}
	ss.mu.Unlock()
	if closed {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	if mon != nil {
		snap := mon.Snapshot()
		out.Monitored = true
		out.Stats = &snap
	}
	writeJSON(w, http.StatusOK, out)
}

// StatusReport is the GET /v1/status response: the one-screen fleet view.
type StatusReport struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Draining      bool         `json:"draining"`
	Sessions      int          `json:"sessions"`
	TrunkSessions int          `json:"trunk_sessions"`
	CostUsed      float64      `json:"admission_cost_used"`
	Statmon       statmonFleet `json:"statmon"`
	DriftingIDs   []string     `json:"drifting_ids,omitempty"`
}

// handleStatus serves the fleet rollup. Unlike the cached metric gauges
// this walks the fleet fresh — the endpoint is for humans and scripts
// investigating a run, and it names the drifting sessions.
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	rep := StatusReport{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.adm.isDraining(),
		CostUsed:      s.adm.usedCost(),
	}
	var fleet statmonFleet
	for _, ss := range s.reg.list() {
		ss.mu.Lock()
		mon, closed, kind, id := ss.mon, ss.closed, ss.kind, ss.id
		ss.mu.Unlock()
		if closed {
			continue
		}
		rep.Sessions++
		if kind == sessionKindTrunk {
			rep.TrunkSessions++
		}
		if mon == nil {
			continue
		}
		snap := mon.Snapshot()
		fleet.Monitored++
		if snap.Drifting {
			fleet.Drifting++
			rep.DriftingIDs = append(rep.DriftingIDs, id)
		}
		if snap.HurstValid {
			fleet.MeanHurst += snap.Hurst
			fleet.hurstN++
		}
		if snap.ACFErr > fleet.MaxACFErr {
			fleet.MaxACFErr = snap.ACFErr
		}
		if snap.Drift > fleet.MaxDrift {
			fleet.MaxDrift = snap.Drift
		}
	}
	if fleet.hurstN > 0 {
		fleet.MeanHurst /= float64(fleet.hurstN)
	}
	rep.Statmon = fleet
	sortStrings(rep.DriftingIDs)
	writeJSON(w, http.StatusOK, rep)
}

// sortStrings orders the (short) drifting-ID list with the session-ID
// comparator so the report is deterministic across registry shards.
func sortStrings(ids []string) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && sessionIDLess(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
