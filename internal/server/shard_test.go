package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"testing"
	"time"

	"vbrsim/internal/modelspec"
)

// fakeStream is a minimal frameStream for registry-level tests.
type fakeStream struct {
	pos    int
	closed bool
}

func (f *fakeStream) Pos() int             { return f.pos }
func (f *fakeStream) Order() int           { return 0 }
func (f *fakeStream) MaxACFError() float64 { return 0 }
func (f *fakeStream) Fill(out []float64) {
	for i := range out {
		out[i] = float64(f.pos)
		f.pos++
	}
}
func (f *fakeStream) SeekCtx(_ context.Context, pos int) error { f.pos = pos; return nil }
func (f *fakeStream) Close()                                   { f.closed = true }

func newFakeSession(id string) *session {
	ss := &session{id: id, stream: &fakeStream{}}
	ss.touch()
	return ss
}

func TestRegistryShardCountRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := newSessionRegistry(tc.n, nil).numShards(); got != tc.want {
			t.Errorf("newSessionRegistry(%d): %d shards, want %d", tc.n, got, tc.want)
		}
	}
}

func TestRegistryAddGetRemove(t *testing.T) {
	var gauges []int
	r := newSessionRegistry(4, func(_, active int) { gauges = append(gauges, active) })
	const n = 50
	for i := 0; i < n; i++ {
		r.add(newFakeSession(fmt.Sprintf("s%d", i)))
	}
	if got := r.count.Load(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	if got := len(r.list()); got != n {
		t.Fatalf("list has %d sessions, want %d", got, n)
	}
	// Every session lands in the shard its ID hashes to and is retrievable.
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		ss, ok := r.get(id)
		if !ok || ss.id != id {
			t.Fatalf("get(%s): ok=%v ss=%v", id, ok, ss)
		}
	}
	if _, ok := r.get("nope"); ok {
		t.Fatal("get of an unknown id succeeded")
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i)
		if _, ok := r.remove(id); !ok {
			t.Fatalf("remove(%s) failed", id)
		}
		if _, ok := r.remove(id); ok {
			t.Fatalf("second remove(%s) succeeded", id)
		}
	}
	if got := r.count.Load(); got != 0 {
		t.Fatalf("count after drain = %d, want 0", got)
	}
	if len(gauges) != 2*n {
		t.Fatalf("onCount fired %d times, want %d (every add and remove)", len(gauges), 2*n)
	}
}

func TestRegistryGetTouchesIdleClock(t *testing.T) {
	r := newSessionRegistry(2, nil)
	ss := newFakeSession("s1")
	r.add(ss)
	ss.lastTouch.Store(1) // ancient
	r.get("s1")
	if got := ss.lastTouch.Load(); got == 1 {
		t.Fatal("get did not refresh lastTouch")
	}
}

func TestEvictIdleSweep(t *testing.T) {
	r := newSessionRegistry(4, nil)
	old := time.Now().Add(-time.Hour).UnixNano()
	var idle, fresh, busy *session
	idle, fresh, busy = newFakeSession("idle"), newFakeSession("fresh"), newFakeSession("busy")
	r.add(idle)
	r.add(fresh)
	r.add(busy)
	idle.lastTouch.Store(old)
	busy.lastTouch.Store(old)
	busy.mu.Lock() // an in-flight request holds the session
	defer busy.mu.Unlock()

	var evicted []*session
	n := r.evictIdle(time.Now().Add(-time.Minute), func(ss *session) { evicted = append(evicted, ss) })
	if n != 1 || len(evicted) != 1 || evicted[0] != idle {
		t.Fatalf("evicted %d sessions (%v), want exactly the idle one", n, evicted)
	}
	if !idle.closed || !idle.stream.(*fakeStream).closed {
		t.Fatal("evicted session was not closed")
	}
	if fresh.closed || busy.closed {
		t.Fatal("fresh or busy session was closed")
	}
	if _, ok := r.get("idle"); ok {
		t.Fatal("evicted session still in the registry")
	}
	if _, ok := r.get("busy"); !ok {
		t.Fatal("busy session lost")
	}
	if got := r.count.Load(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}

	// A session touched between the scan and the lock survives: the
	// re-check under ss.mu sees the fresh clock.
	fresh.lastTouch.Store(old)
	fresh.touch() // simulates get() winning the race just before the sweep
	if n := r.evictIdle(time.Now().Add(-time.Minute), nil); n != 0 {
		t.Fatalf("sweep evicted %d recently touched sessions", n)
	}
}

// TestServerEvictsIdleSessions drives eviction through the full server: an
// untouched session is swept out (404 afterwards, eviction metrics, cost
// returned), while a busy or touched one survives.
func TestServerEvictsIdleSessions(t *testing.T) {
	s, ts := newTestServer(t, Options{IdleTimeout: time.Hour, EvictInterval: time.Hour})

	tes := tesTestSpec(7)
	victim := createStream(t, ts.URL, tes)
	keeper := createStream(t, ts.URL, tes)
	if used := s.adm.usedCost(); used != 2*costTES {
		t.Fatalf("used cost = %v, want %v", used, 2*costTES)
	}

	// Rewind only the victim's idle clock; the keeper stays fresh.
	vss, ok := s.reg.get(victim.ID)
	if !ok {
		t.Fatal("victim not in registry")
	}
	vss.lastTouch.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	if n := s.evictIdleOnce(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}

	resp, err := http.Get(ts.URL + "/v1/streams/" + victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session GET: %d, want 404", resp.StatusCode)
	}
	if _, ok := s.reg.get(keeper.ID); !ok {
		t.Fatal("keeper evicted")
	}
	if used := s.adm.usedCost(); used != costTES {
		t.Fatalf("used cost after eviction = %v, want %v", used, costTES)
	}
	// Deleting the evicted session is a 404, not a double-close.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/streams/"+victim.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete after eviction: %d, want 404", resp.StatusCode)
	}
	scrape := scrapeMetrics(t, ts.URL)
	if !bytes.Contains(scrape, []byte("vbrsim_server_evictions_total 1")) {
		t.Fatal("evictions counter not incremented")
	}
}

// tesTestSpec is the cheapest valid session spec (cost 1 unit).
func tesTestSpec(seed uint64) modelspec.Spec {
	return modelspec.Spec{
		Engine:   modelspec.EngineTES,
		Seed:     seed,
		TES:      &modelspec.TESSpec{Alpha: 0.3},
		Marginal: &modelspec.MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
	}
}

func scrapeMetrics(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestShardInvariance runs one fixed request sequence against servers with
// 1, 4, and 16 shards and requires byte-identical responses throughout:
// session IDs come from a global counter and all observable behavior hashes
// off the ID, so shard topology must be invisible on the wire. Frame bodies
// are compared as raw bytes (the binary record protocol), list/step/info
// responses as JSON bytes.
func TestShardInvariance(t *testing.T) {
	baseline := shardScriptResponses(t, 1)
	for _, shards := range []int{4, 16} {
		got := shardScriptResponses(t, shards)
		if len(got) != len(baseline) {
			t.Fatalf("shards=%d produced %d responses, want %d", shards, len(got), len(baseline))
		}
		for i := range baseline {
			if !bytes.Equal(maskCreated(got[i]), maskCreated(baseline[i])) {
				t.Fatalf("shards=%d response %d differs from single-shard baseline:\n got: %.200s\nwant: %.200s",
					shards, i, got[i], baseline[i])
			}
		}
	}
}

// maskCreated blanks the created timestamps — the only wall-clock bytes in
// any response — so the invariance comparison is exact everywhere else.
var createdRE = regexp.MustCompile(`"created":"[^"]*"`)

func maskCreated(body []byte) []byte {
	return createdRE.ReplaceAll(body, []byte(`"created":"T"`))
}

// shardScriptResponses runs the canonical request script against a fresh
// server with the given shard count and collects every response body.
func shardScriptResponses(t *testing.T, shards int) [][]byte {
	t.Helper()
	_, ts := newTestServer(t, Options{Shards: shards, MaxSessions: 32, Seed: 99})
	var out [][]byte

	record := func(resp *http.Response, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode >= 500 {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
		}
		out = append(out, body)
	}

	// Create a mixed fleet: six cheap TES streams, two paper streams, one
	// trunk. Explicit seeds keep the sequence identical across runs.
	var ids []string
	create := func(path string, spec any) {
		t.Helper()
		resp := postJSON(t, ts.URL+path, spec)
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: %d %s", resp.StatusCode, body)
		}
		var info SessionInfo
		if err := decodeJSONBytes(body, &info); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		out = append(out, body)
	}
	for i := 0; i < 6; i++ {
		create("/v1/streams", tesTestSpec(100+uint64(i)))
	}
	for i := 0; i < 2; i++ {
		create("/v1/streams", paperSpec(200+uint64(i)))
	}
	paper := modelspec.Paper()
	create("/v1/trunks", &modelspec.TrunkSpec{
		Seed: 7777,
		Components: []modelspec.TrunkComponent{
			{Count: 3, Spec: modelspec.Spec{ACF: paper.ACF, Marginal: paper.Marginal}},
		},
	})

	// Binary frame reads from every session (raw body bytes).
	for _, id := range ids {
		record(http.Get(fmt.Sprintf("%s/v1/streams/%s/frames?n=40&format=frames", ts.URL, id)))
	}
	// One batched step over the whole fleet, frames included.
	record(http.Post(ts.URL+"/v1/streams/step", "application/json",
		bytes.NewReader(mustJSON(t, StepRequest{IDs: ids, N: 16, IncludeFrames: true}))))
	// Seek replay on the trunk, NDJSON read on a stream.
	record(http.Get(fmt.Sprintf("%s/v1/streams/%s/frames?n=24&from=10&format=frames", ts.URL, ids[len(ids)-1])))
	record(http.Get(fmt.Sprintf("%s/v1/streams/%s/frames?n=8", ts.URL, ids[0])))
	// Delete one session mid-script; subsequent state must agree.
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/streams/"+ids[3], nil)
	if err != nil {
		t.Fatal(err)
	}
	record(http.DefaultClient.Do(req))
	// Final state: every session's info and the sorted list.
	for _, id := range ids {
		record(http.Get(ts.URL + "/v1/streams/" + id))
	}
	record(http.Get(ts.URL + "/v1/streams"))
	return out
}

func decodeJSONBytes(body []byte, v any) error {
	return json.Unmarshal(body, v)
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardGaugeTracksTopology checks the per-shard occupancy gauge: the
// exposition shows every shard (zeros included) and the values sum to the
// active session count.
func TestShardGaugeTracksTopology(t *testing.T) {
	_, ts := newTestServer(t, Options{Shards: 4})
	for i := 0; i < 9; i++ {
		createStream(t, ts.URL, tesTestSpec(uint64(300+i)))
	}
	scrape := scrapeMetrics(t, ts.URL)
	sum, lines := 0, 0
	for _, line := range bytes.Split(scrape, []byte("\n")) {
		rest, ok := bytes.CutPrefix(line, []byte("vbrsim_server_shard_sessions{shard="))
		if !ok {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(string(rest[bytes.IndexByte(rest, ' ')+1:]), "%d", &v); err != nil {
			t.Fatalf("bad shard gauge line %q: %v", line, err)
		}
		lines++
		sum += v
	}
	if lines != 4 {
		t.Fatalf("exposition shows %d shard gauge samples, want 4\n%s", lines, scrape)
	}
	if sum != 9 {
		t.Fatalf("shard gauges sum to %d, want 9", sum)
	}
}
