// Package server implements trafficd, the streaming VBR-traffic service:
// named generation sessions streaming bytes-per-frame over HTTP (NDJSON or
// binary float64), an async job queue for fitting and overflow estimation,
// and Prometheus-style observability.
//
// The HTTP surface:
//
//	GET    /healthz                      liveness (503 while draining)
//	GET    /metrics                      Prometheus text format
//	POST   /v1/streams                   create a session from a modelspec
//	POST   /v1/trunks                    create a superposition session from a trunk spec
//	POST   /v1/streams/step              advance many sessions in one batch
//	GET    /v1/streams                   list sessions
//	GET    /v1/streams/{id}              session state
//	DELETE /v1/streams/{id}              close a session
//	GET    /v1/streams/{id}/frames?n=N   stream N frames (&from=K to seek)
//	POST   /v1/jobs                      submit fit / qsim-mc / qsim-is
//	GET    /v1/jobs                      list jobs
//	GET    /v1/jobs/{id}                 poll one job
//
// Sessions are deterministic: a session's frames are a pure function of its
// spec and seed, so a client that reconnects can replay any range with
// from=, and the same spec and seed generated offline (modelspec.Frames or
// cmd/synth with the fast backend) yield bit-identical values. Trunk
// sessions extend the same contract to superpositions: every component
// seed derives from the trunk seed (internal/trunk), so the aggregate too
// is reproducible offline from the create response alone.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"vbrsim/internal/obs"
	"vbrsim/internal/par"
)

// Options configures the service.
type Options struct {
	// MaxSessions caps concurrently open streaming sessions; creations
	// beyond it get 429. Default 64.
	MaxSessions int
	// JobWorkers is the job worker-pool size. Default GOMAXPROCS, capped
	// at 4 so jobs (which parallelize internally) cannot starve streams.
	JobWorkers int
	// JobQueueDepth bounds queued-but-unstarted jobs; submissions beyond
	// it get 429. Default 64.
	JobQueueDepth int
	// Seed is the base for per-session seed derivation when a spec does
	// not pin one. Default 1.
	Seed uint64
	// Tol is the truncation tolerance for session fast plans (0 = default).
	Tol float64
	// MaxBodyBytes caps request bodies (specs can embed empirical samples,
	// fit jobs whole traces). Default 64 MiB.
	MaxBodyBytes int64
	// Registry receives the server's metrics; nil creates a private
	// registry (keeps tests isolated). trafficd passes obs.Default so the
	// daemon and in-process CLI instrumentation share one registry.
	Registry *obs.Registry
}

func (o *Options) fill() {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = runtime.GOMAXPROCS(0)
		if o.JobWorkers > 4 {
			o.JobWorkers = 4
		}
	}
	if o.JobQueueDepth <= 0 {
		o.JobQueueDepth = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
}

var (
	errDraining   = errors.New("server is draining")
	errSessionCap = errors.New("session limit reached")
	errQueueFull  = errors.New("job queue full")
	errNoSession  = errors.New("no such session")
)

// Server is the trafficd service. It implements http.Handler.
type Server struct {
	opt     Options
	mux     *http.ServeMux
	metrics *metrics

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu          sync.Mutex
	sessions    map[string]*session
	nextSession uint64
	draining    bool

	seedOrdinal atomic.Uint64
	jobs        *jobPool
}

// New builds a Server ready to serve.
func New(opt Options) *Server {
	opt.fill()
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opt:      opt,
		mux:      http.NewServeMux(),
		metrics:  newMetrics(reg),
		sessions: make(map[string]*session),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.jobs = newJobPool(s, opt.JobWorkers, opt.JobQueueDepth)

	// Worker-pool runs (estimator fan-outs, DH batches) feed the par
	// series. The observer is process-wide; with several Servers in one
	// process the most recent wins, which is fine for the daemon (one
	// Server) and harmless in tests.
	par.SetObserver(s.metrics.observePar)

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", reg.Handler())
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	s.mux.HandleFunc("POST /v1/trunks", s.handleTrunkCreate)
	s.mux.HandleFunc("POST /v1/streams/step", s.handleStreamStep)
	s.mux.HandleFunc("GET /v1/streams", s.handleStreamList)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamGet)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("GET /v1/streams/{id}/frames", s.handleStreamFrames)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry returns the metrics registry this server reports through.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

// BeginDrain stops admitting new sessions and jobs while letting in-flight
// streams and queued jobs finish; /healthz flips to 503 so load balancers
// stop routing here. Call on SIGTERM, then shut the http.Server down
// gracefully, then Close.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.jobs.drain()
}

// Close cancels running jobs and waits for the worker pool to exit.
// Sessions hold no goroutines or external resources, so dropping the
// Server after Close releases everything.
func (s *Server) Close() {
	s.BeginDrain()
	s.cancelBase()
	s.jobs.wg.Wait()
}

// ---------------------------------------------------------------------------
// Response helpers

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
