// Package server implements trafficd, the streaming VBR-traffic service:
// named generation sessions streaming bytes-per-frame over HTTP (NDJSON or
// binary float64), an async job queue for fitting and overflow estimation,
// and Prometheus-style observability.
//
// The HTTP surface:
//
//	GET    /healthz                      liveness (503 while draining)
//	GET    /metrics                      Prometheus text format
//	POST   /v1/streams                   create a session from a modelspec
//	POST   /v1/trunks                    create a superposition session from a trunk spec
//	POST   /v1/streams/step              advance many sessions in one batch
//	GET    /v1/streams                   list sessions
//	GET    /v1/streams/{id}              session state
//	DELETE /v1/streams/{id}              close a session
//	GET    /v1/streams/{id}/frames?n=N   stream N frames (&from=K to seek)
//	GET    /v1/sessions/{id}/stats       live statistical-monitor snapshot
//	GET    /v1/status                    fleet rollup (sessions, drift)
//	POST   /v1/jobs                      submit fit / qsim-mc / qsim-is
//	GET    /v1/jobs                      list jobs
//	GET    /v1/jobs/{id}                 poll one job
//
// Sessions are deterministic: a session's frames are a pure function of its
// spec and seed, so a client that reconnects can replay any range with
// from=, and the same spec and seed generated offline (modelspec.Frames or
// cmd/synth with the fast backend) yield bit-identical values. Trunk
// sessions extend the same contract to superpositions: every component
// seed derives from the trunk seed (internal/trunk), so the aggregate too
// is reproducible offline from the create response alone.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vbrsim/internal/obs"
	"vbrsim/internal/par"
)

// Options configures the service.
type Options struct {
	// MaxSessions caps concurrently open streaming sessions; creations
	// beyond it get 429. Default 64.
	MaxSessions int
	// Shards is the session-registry shard count, rounded up to a power of
	// two. Each shard has its own lock and map, so concurrent requests for
	// different sessions contend only 1/Shards of the time. Default 16.
	Shards int
	// MaxCost is the admission-control budget in session cost units (see
	// estimateStreamCost). 0 derives a budget from MaxSessions generous
	// enough that cost never binds before the session cap for typical
	// single-source fleets; set it explicitly to make cost-aware shedding
	// the primary limit (trunk-heavy workloads).
	MaxCost float64
	// IdleTimeout evicts sessions untouched for this long (LRU-style: a
	// frames/step/seek/info request refreshes the clock). 0 disables
	// eviction.
	IdleTimeout time.Duration
	// EvictInterval is the evictor sweep period; 0 derives IdleTimeout/4
	// (minimum 1s). Only meaningful with IdleTimeout > 0.
	EvictInterval time.Duration
	// JobWorkers is the job worker-pool size. Default GOMAXPROCS, capped
	// at 4 so jobs (which parallelize internally) cannot starve streams.
	JobWorkers int
	// StepWorkers is the fan-out width of batched session stepping
	// (POST /v1/streams/step). Default GOMAXPROCS. Sessions are assigned to
	// workers in sticky contiguous chunks of the request's ID list, so a
	// driver that steps the same fleet repeatedly keeps each session's
	// arena warm in one worker's cache; the value is primarily a test knob
	// (results are bit-identical for any width).
	StepWorkers int
	// JobQueueDepth bounds queued-but-unstarted jobs; submissions beyond
	// it get 429. Default 64.
	JobQueueDepth int
	// Seed is the base for per-session seed derivation when a spec does
	// not pin one. Default 1.
	Seed uint64
	// Tol is the truncation tolerance for session fast plans (0 = default).
	Tol float64
	// MaxBodyBytes caps request bodies (specs can embed empirical samples,
	// fit jobs whole traces). Default 64 MiB.
	MaxBodyBytes int64
	// Registry receives the server's metrics; nil creates a private
	// registry (keeps tests isolated). trafficd passes obs.Default so the
	// daemon and in-process CLI instrumentation share one registry.
	Registry *obs.Registry
	// StatmonSampleEvery is the statistical self-monitor's chunk sampling
	// rate: every k-th served chunk per session is folded into its monitor.
	// 0 selects the default 32 (worst-case tap cost ~2-3% of frame
	// synthesis); 1 observes everything; negative disables statmon.
	StatmonSampleEvery int
	// StatmonDriftThreshold flags a monitored session as drifting when its
	// drift score reaches it. 0 selects statmon's default 1.0.
	StatmonDriftThreshold float64
	// AccessLog, when set, receives one NDJSON line per HTTP request (plus
	// any pipeline spans opened under request contexts). Lines are written
	// through the tracer's lock, so any io.Writer works.
	AccessLog io.Writer
}

// defaultCostPerSession sizes the derived admission budget: roughly one
// paper-model truncated stream per session slot, with headroom.
const defaultCostPerSession = 16

func (o *Options) fill() {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.MaxCost <= 0 {
		o.MaxCost = defaultCostPerSession * float64(o.MaxSessions)
	}
	if o.IdleTimeout > 0 && o.EvictInterval <= 0 {
		o.EvictInterval = o.IdleTimeout / 4
		if o.EvictInterval < time.Second {
			o.EvictInterval = time.Second
		}
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = runtime.GOMAXPROCS(0)
		if o.JobWorkers > 4 {
			o.JobWorkers = 4
		}
	}
	if o.StepWorkers <= 0 {
		o.StepWorkers = runtime.GOMAXPROCS(0)
	}
	if o.JobQueueDepth <= 0 {
		o.JobQueueDepth = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.StatmonSampleEvery == 0 {
		o.StatmonSampleEvery = 32
	}
}

var (
	errDraining   = errors.New("server is draining")
	errSessionCap = errors.New("session limit reached")
	errQueueFull  = errors.New("job queue full")
	errNoSession  = errors.New("no such session")
)

// Server is the trafficd service. It implements http.Handler.
type Server struct {
	opt     Options
	mux     *http.ServeMux
	metrics *metrics

	baseCtx    context.Context
	cancelBase context.CancelFunc

	reg         *sessionRegistry
	adm         *admission
	nextSession atomic.Uint64
	evictorDone chan struct{} // nil when eviction is disabled

	seedOrdinal atomic.Uint64
	jobs        *jobPool

	started time.Time
	access  *obs.Tracer   // nil unless Options.AccessLog is set
	reqSeq  atomic.Uint64 // request-id sequence

	rollMu sync.Mutex // statmon fleet-rollup cache (see statmonRollup)
	rollAt time.Time
	roll   statmonFleet
}

// New builds a Server ready to serve.
func New(opt Options) *Server {
	opt.fill()
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opt:     opt,
		mux:     http.NewServeMux(),
		metrics: newMetrics(reg),
		adm:     newAdmission(opt.MaxCost, opt.MaxSessions),
		started: time.Now(),
	}
	if opt.AccessLog != nil {
		s.access = obs.NewTracer(opt.AccessLog)
	}
	s.reg = newSessionRegistry(opt.Shards, func(shard, active int) {
		s.metrics.shardSessions.With(shardLabel(shard)).Set(float64(active))
	})
	// Pre-touch every shard's gauges and counters so the exposition shows
	// the full topology (all-zero shards included) from the first scrape.
	for i := 0; i < s.reg.numShards(); i++ {
		s.metrics.shardSessions.With(shardLabel(i)).Set(0)
		s.metrics.shardRequests.With(shardLabel(i)).Add(0)
	}
	s.registerStatmonGauges(reg)
	reg.GaugeFunc("vbrsim_server_admission_cost_used",
		"Admission-control cost units currently reserved by open sessions.",
		s.adm.usedCost)
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.jobs = newJobPool(s, opt.JobWorkers, opt.JobQueueDepth)
	if opt.IdleTimeout > 0 {
		s.evictorDone = make(chan struct{})
		go s.runEvictor()
	}

	// Worker-pool runs (estimator fan-outs, DH batches) feed the par
	// series. The observer is process-wide; with several Servers in one
	// process the most recent wins, which is fine for the daemon (one
	// Server) and harmless in tests.
	par.SetObserver(s.metrics.observePar)

	// Every route goes through the RED middleware under a stable endpoint
	// label (see middleware.go). The metrics scrape itself is instrumented
	// too: scrape latency regressions should be visible in the scrape.
	s.route("GET /healthz", "healthz", http.HandlerFunc(s.handleHealthz))
	s.route("GET /metrics", "metrics", reg.Handler())
	s.route("POST /v1/streams", "stream_create", http.HandlerFunc(s.handleStreamCreate))
	s.route("POST /v1/trunks", "trunk_create", http.HandlerFunc(s.handleTrunkCreate))
	s.route("POST /v1/streams/step", "step", http.HandlerFunc(s.handleStreamStep))
	s.route("GET /v1/streams", "stream_list", http.HandlerFunc(s.handleStreamList))
	s.route("GET /v1/streams/{id}", "stream_get", http.HandlerFunc(s.handleStreamGet))
	s.route("DELETE /v1/streams/{id}", "stream_delete", http.HandlerFunc(s.handleStreamDelete))
	s.route("GET /v1/streams/{id}/frames", "frames", http.HandlerFunc(s.handleStreamFrames))
	s.route("GET /v1/sessions/{id}/stats", "session_stats", http.HandlerFunc(s.handleSessionStats))
	s.route("GET /v1/status", "status", http.HandlerFunc(s.handleStatus))
	s.route("POST /v1/jobs", "job_create", http.HandlerFunc(s.handleJobCreate))
	s.route("GET /v1/jobs", "job_list", http.HandlerFunc(s.handleJobList))
	s.route("GET /v1/jobs/{id}", "job_get", http.HandlerFunc(s.handleJobGet))
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry returns the metrics registry this server reports through.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.adm.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

// BeginDrain stops admitting new sessions and jobs while letting in-flight
// streams and queued jobs finish; /healthz flips to 503 so load balancers
// stop routing here. Call on SIGTERM, then shut the http.Server down
// gracefully, then Close.
func (s *Server) BeginDrain() {
	s.adm.beginDrain()
	s.jobs.drain()
}

// Close cancels running jobs, stops the evictor, and waits for the worker
// pool to exit. Sessions hold no goroutines or external resources, so
// dropping the Server after Close releases everything.
func (s *Server) Close() {
	s.BeginDrain()
	s.cancelBase()
	if s.evictorDone != nil {
		<-s.evictorDone
	}
	s.jobs.wg.Wait()
}

// runEvictor sweeps the registry every EvictInterval, closing sessions
// idle past IdleTimeout and returning their admission cost.
func (s *Server) runEvictor() {
	defer close(s.evictorDone)
	t := time.NewTicker(s.opt.EvictInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.evictIdleOnce()
		}
	}
}

// evictIdleOnce runs one eviction sweep (the evictor tick; tests call it
// directly for a deterministic sweep).
func (s *Server) evictIdleOnce() int {
	begin := time.Now()
	cutoff := begin.Add(-s.opt.IdleTimeout)
	n := s.reg.evictIdle(cutoff, func(ss *session) {
		s.adm.release(ss.cost)
		s.metrics.sessionsActive.Add(-1)
		s.metrics.evictions.Inc()
		if ss.kind == sessionKindTrunk {
			s.metrics.trunkSessions.Add(-1)
		}
	})
	s.metrics.sweepSeconds.Observe(time.Since(begin).Seconds())
	s.metrics.sessionsSwept.Add(float64(n))
	return n
}

// ---------------------------------------------------------------------------
// Response helpers

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
