package server

import (
	"net/http/httptest"
	"testing"

	"vbrsim/internal/obs"
)

// documentedMetrics is the DESIGN.md §7/§9 metric table: every name the
// docs promise, with its type. The exposition test fails when the served
// /metrics drifts from this list, and ci.sh re-checks the same names
// against a live daemon.
var documentedMetrics = map[string]string{
	"vbrsim_sessions_active":                     "gauge",
	"vbrsim_sessions_total":                      "counter",
	"vbrsim_streams_rejected_total":              "counter",
	"vbrsim_frames_streamed_total":               "counter",
	"vbrsim_stream_request_frames":               "histogram",
	"vbrsim_job_duration_seconds":                "summary",
	"vbrsim_jobs_failed_total":                   "counter",
	"vbrsim_jobs_rejected_total":                 "counter",
	"vbrsim_estimator_completed":                 "gauge",
	"vbrsim_estimator_p":                         "gauge",
	"vbrsim_estimator_std_err":                   "gauge",
	"vbrsim_estimator_norm_var":                  "gauge",
	"vbrsim_estimator_variance_ratio":            "gauge",
	"vbrsim_estimator_reps_per_sec":              "gauge",
	"vbrsim_par_runs_total":                      "counter",
	"vbrsim_par_tasks_total":                     "counter",
	"vbrsim_par_busy_seconds_total":              "counter",
	"vbrsim_par_peak_in_flight":                  "gauge",
	"vbrsim_par_utilization":                     "gauge",
	"vbrsim_plan_cache_hits_total":               "counter",
	"vbrsim_plan_cache_misses_total":             "counter",
	"vbrsim_plan_cache_evictions_total":          "counter",
	"vbrsim_plan_cache_singleflight_waits_total": "counter",
	"vbrsim_streamblock_refills_total":           "counter",
	"vbrsim_streamblock_arena_bytes":             "gauge",
	"vbrsim_streamblock_block_ns":                "histogram",
	"vbrsim_trunk_sessions_active":               "gauge",
	"vbrsim_trunk_sources_active":                "gauge",
	"vbrsim_trunk_fanout_ns":                     "histogram",
	"vbrsim_server_shard_sessions":               "gauge",
	"vbrsim_server_admission_rejects_total":      "counter",
	"vbrsim_server_evictions_total":              "counter",
	"vbrsim_server_admission_cost_used":          "gauge",
	"vbrsim_server_sweep_seconds":                "histogram",
	"vbrsim_server_swept_sessions_total":         "counter",
	"vbrsim_http_requests_total":                 "counter",
	"vbrsim_http_errors_total":                   "counter",
	"vbrsim_http_request_seconds":                "histogram",
	"vbrsim_http_in_flight":                      "gauge",
	"vbrsim_server_shard_requests_total":         "counter",
	"vbrsim_server_frame_emit_seconds":           "histogram",
	"vbrsim_statmon_frames_sampled_total":        "counter",
	"vbrsim_statmon_hurst":                       "gauge",
	"vbrsim_statmon_acf_err":                     "gauge",
	"vbrsim_statmon_drift":                       "gauge",
	"vbrsim_statmon_sessions_monitored":          "gauge",
	"vbrsim_statmon_sessions_drifting":           "gauge",
}

// TestMetricsExpositionComplete scrapes a fresh server's /metrics through
// the obs parser and asserts the exposition is lint-clean and carries
// every documented metric with the documented type.
func TestMetricsExpositionComplete(t *testing.T) {
	s := New(Options{})
	defer s.Close()

	// Exercise the labeled families so they carry samples, not just
	// HELP/TYPE headers.
	s.metrics.jobDone("fit", 0.5, false)
	s.metrics.jobDone("qsim-is", 1.5, true)
	s.metrics.jobsRejected.With("qsim-mc").Inc()
	s.metrics.streamFrames.Observe(100)
	s.metrics.admissionRejects.With(rejectPressure).Inc()
	s.metrics.evictions.Inc()
	s.metrics.observeEstimator(obs.Convergence{
		Completed: 10, Total: 100, P: 1e-5, StdErr: 1e-6,
		NormVar: 12, VarianceRatio: 8000, RepsPerSec: 500,
	})
	// One evictor sweep and one instrumented request, so the sweep
	// histogram and the RED request counter carry samples.
	s.evictIdleOnce()
	s.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}

	fams, err := obs.ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if probs := obs.Lint(fams); len(probs) > 0 {
		t.Fatalf("exposition lint problems: %v", probs)
	}
	for name, typ := range documentedMetrics {
		f, ok := fams[name]
		if !ok {
			t.Errorf("documented metric %s missing from /metrics", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("metric %s has type %s, documented as %s", name, f.Type, typ)
		}
	}

	// Spot-check the satellite fixes surfaced in the exposition: failed
	// jobs carry durations, rejections are per kind.
	wantSamples := map[string]bool{
		`vbrsim_job_duration_seconds_sum{kind="qsim-is",status="failed"}`: false,
		`vbrsim_job_duration_seconds_sum{kind="fit",status="ok"}`:         false,
		`vbrsim_jobs_rejected_total{kind="qsim-mc"}`:                      false,
		`vbrsim_server_admission_rejects_total{reason="pressure"}`:        false,
		`vbrsim_server_sweep_seconds_count`:                               false,
		`vbrsim_http_requests_total{endpoint="healthz",code="200"}`:       false,
	}
	for _, f := range fams {
		for _, smp := range f.Samples {
			key := smp.Name + smp.Labels
			if _, ok := wantSamples[key]; ok {
				wantSamples[key] = true
				if smp.Value <= 0 {
					t.Errorf("sample %s = %v, want > 0", key, smp.Value)
				}
			}
		}
	}
	for key, seen := range wantSamples {
		if !seen {
			t.Errorf("expected sample %s not served", key)
		}
	}
}

// TestFailedJobDurationRecorded pins the satellite fix at the metrics API
// level: a failed job contributes wall time under status="failed" and does
// not pollute the ok series.
func TestFailedJobDurationRecorded(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	s.metrics.jobDone("fit", 2.0, true)
	s.metrics.jobDone("fit", 1.0, false)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fams, err := obs.ParseExposition(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, smp := range fams["vbrsim_job_duration_seconds"].Samples {
		got[smp.Name+smp.Labels] = smp.Value
	}
	if got[`vbrsim_job_duration_seconds_sum{kind="fit",status="failed"}`] != 2.0 {
		t.Errorf("failed duration sum = %v, want 2", got[`vbrsim_job_duration_seconds_sum{kind="fit",status="failed"}`])
	}
	if got[`vbrsim_job_duration_seconds_count{kind="fit",status="failed"}`] != 1 {
		t.Errorf("failed duration count = %v, want 1", got[`vbrsim_job_duration_seconds_count{kind="fit",status="failed"}`])
	}
	if got[`vbrsim_job_duration_seconds_sum{kind="fit",status="ok"}`] != 1.0 {
		t.Errorf("ok duration sum = %v, want 1", got[`vbrsim_job_duration_seconds_sum{kind="fit",status="ok"}`])
	}
	if fams["vbrsim_jobs_failed_total"].Samples[0].Value != 1 {
		t.Errorf("jobs failed = %+v", fams["vbrsim_jobs_failed_total"].Samples)
	}
}
