package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// shard is one slice of the session registry: its own lock and map, so
// lookups and churn on different shards never contend. Sessions hash to a
// shard by ID, and because IDs come from one global counter the assignment
// is identical at any shard count — shard topology is invisible in every
// response (the shard-invariance test pins this).
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
}

// sessionRegistry is the sharded session table: 2^k shards, each guarded by
// its own mutex. All cross-shard state (the total count, ID assignment,
// admission budget) lives outside the shards in atomics or the admission
// controller, so no operation ever holds two shard locks.
type sessionRegistry struct {
	shards []shard
	mask   uint32
	count  atomic.Int64
	// onCount, when set, observes every per-shard occupancy change (the
	// vbrsim_server_shard_sessions gauge). Called with the shard's lock
	// held; implementations must not touch the registry.
	onCount func(shard, active int)
}

// newSessionRegistry builds a registry of n shards, rounded up to a power
// of two (minimum 1).
func newSessionRegistry(n int, onCount func(shard, active int)) *sessionRegistry {
	size := 1
	for size < n {
		size <<= 1
	}
	r := &sessionRegistry{shards: make([]shard, size), mask: uint32(size - 1), onCount: onCount}
	for i := range r.shards {
		r.shards[i].sessions = make(map[string]*session)
	}
	return r
}

// shardFor hashes a session ID to its shard index (FNV-1a, masked).
func (r *sessionRegistry) shardFor(id string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h & r.mask)
}

// add registers ss under its (already assigned) ID.
func (r *sessionRegistry) add(ss *session) {
	i := r.shardFor(ss.id)
	sh := &r.shards[i]
	sh.mu.Lock()
	sh.sessions[ss.id] = ss
	if r.onCount != nil {
		r.onCount(i, len(sh.sessions))
	}
	sh.mu.Unlock()
	r.count.Add(1)
}

// get returns the session and refreshes its idle clock.
func (r *sessionRegistry) get(id string) (*session, bool) {
	sh := &r.shards[r.shardFor(id)]
	sh.mu.Lock()
	ss, ok := sh.sessions[id]
	sh.mu.Unlock()
	if ok {
		ss.touch()
	}
	return ss, ok
}

// remove unregisters id and returns the session for the caller to close.
func (r *sessionRegistry) remove(id string) (*session, bool) {
	i := r.shardFor(id)
	sh := &r.shards[i]
	sh.mu.Lock()
	ss, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
		if r.onCount != nil {
			r.onCount(i, len(sh.sessions))
		}
	}
	sh.mu.Unlock()
	if ok {
		r.count.Add(-1)
	}
	return ss, ok
}

// list snapshots every session, one shard at a time (no global lock).
func (r *sessionRegistry) list() []*session {
	out := make([]*session, 0, r.count.Load())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, ss := range sh.sessions {
			out = append(out, ss)
		}
		sh.mu.Unlock()
	}
	return out
}

// evictIdle removes sessions untouched since the cutoff and returns them
// closed. A session whose mutex is held (a frames read or step in flight)
// is busy by definition and skipped via TryLock; the idle clock is
// re-checked under the session lock so a request that grabbed the session
// just before the sweep can never lose it (get touches before locking).
func (r *sessionRegistry) evictIdle(cutoff time.Time, onEvict func(*session)) int {
	evicted := 0
	cut := cutoff.UnixNano()
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for id, ss := range sh.sessions {
			if ss.lastTouch.Load() > cut || !ss.mu.TryLock() {
				continue
			}
			if ss.lastTouch.Load() > cut {
				ss.mu.Unlock()
				continue
			}
			delete(sh.sessions, id)
			if r.onCount != nil {
				r.onCount(i, len(sh.sessions))
			}
			ss.closeLocked()
			ss.mu.Unlock()
			r.count.Add(-1)
			evicted++
			if onEvict != nil {
				onEvict(ss)
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

// numShards returns the shard count (always a power of two).
func (r *sessionRegistry) numShards() int { return len(r.shards) }

// shardLabel is the metrics label of shard i.
func shardLabel(i int) string { return strconv.Itoa(i) }
