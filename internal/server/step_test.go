package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"

	"vbrsim/internal/modelspec"
)

func blockPaperSpec(seed uint64) modelspec.Spec {
	s := modelspec.Paper()
	s.Seed = seed
	s.Engine = modelspec.EngineBlock
	return s
}

// TestBlockEngineSessionMatchesOffline locks the served-vs-offline contract
// for block-engine sessions: the frames a session streams, across chunked
// reads and an explicit from= replay, are bit-identical to Spec.Frames.
func TestBlockEngineSessionMatchesOffline(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := blockPaperSpec(4242)
	info := createStream(t, ts.URL, spec)

	want, err := spec.Frames(context.Background(), 0, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=400", ts.URL, info.ID))
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("frame %d: server %v, offline %v", i, got[i], want[i])
		}
	}
	// Backward seek on the block engine is O(1); it must still land
	// bit-exactly.
	replay := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=100&from=50", ts.URL, info.ID))
	for i := range replay {
		if math.Float64bits(replay[i]) != math.Float64bits(want[50+i]) {
			t.Fatalf("replayed frame %d: %v, want %v", 50+i, replay[i], want[50+i])
		}
	}
}

// TestBlockEngineSeekCapStillEnforced pins the from= guard on block-engine
// sessions: even though their seek is O(1), the 2^24 seek-ahead cap is part
// of the HTTP contract and must reject uniformly across engines.
func TestBlockEngineSeekCapStillEnforced(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	info := createStream(t, ts.URL, blockPaperSpec(7))
	resp, err := http.Get(fmt.Sprintf("%s/v1/streams/%s/frames?n=1&from=%d", ts.URL, info.ID, maxSeekAhead+2))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("seek beyond cap: status %d, want 400", resp.StatusCode)
	}
}

// TestStreamStepAdvancesBatch drives the batched-stepping endpoint over a
// mixed fleet (both engines) and checks every session advances by exactly
// n with the positions reported, and that a follow-up read continues
// bit-identically to offline generation — stepping is just serving without
// the response body.
func TestStreamStepAdvancesBatch(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const fleet = 5
	const stepN = 500
	var ids []string
	var specs []modelspec.Spec
	for i := 0; i < fleet; i++ {
		spec := blockPaperSpec(uint64(1000 + i))
		if i%2 == 1 {
			spec = paperSpec(uint64(1000 + i)) // interleave truncated engine
		}
		info := createStream(t, ts.URL, spec)
		ids = append(ids, info.ID)
		specs = append(specs, spec)
	}

	resp := postJSON(t, ts.URL+"/v1/streams/step", StepRequest{IDs: ids, N: stepN})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("step: %d %s", resp.StatusCode, body)
	}
	results := decodeJSON[[]StepResult](t, resp)
	if len(results) != fleet {
		t.Fatalf("got %d results, want %d", len(results), fleet)
	}
	for i, res := range results {
		if res.ID != ids[i] {
			t.Fatalf("result %d is for %s, want %s (order must match request)", i, res.ID, ids[i])
		}
		if res.Start != 0 || res.Pos != stepN {
			t.Fatalf("result %d: start %d pos %d, want 0 %d", i, res.Start, res.Pos, stepN)
		}
		if res.Frames != nil {
			t.Fatalf("result %d carries frames without include_frames", i)
		}
	}

	// Continuity: frames read after the step are offline frames stepN+.
	for i, id := range ids {
		want, err := specs[i].Frames(context.Background(), 0, stepN+64, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=64", ts.URL, id))
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[stepN+j]) {
				t.Fatalf("session %s frame %d after step: %v, want %v", id, stepN+j, got[j], want[stepN+j])
			}
		}
	}
}

// TestStreamStepIncludeFrames checks the frame-returning variant is
// bit-identical to offline generation.
func TestStreamStepIncludeFrames(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := blockPaperSpec(31337)
	info := createStream(t, ts.URL, spec)

	resp := postJSON(t, ts.URL+"/v1/streams/step", StepRequest{IDs: []string{info.ID}, N: 256, IncludeFrames: true})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("step: %d %s", resp.StatusCode, body)
	}
	results := decodeJSON[[]StepResult](t, resp)
	want, err := spec.Frames(context.Background(), 0, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Frames) != 256 {
		t.Fatalf("results: %+v", results)
	}
	for i, v := range results[0].Frames {
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("stepped frame %d: %v, want %v", i, v, want[i])
		}
	}
}

// TestStreamStepWorkerCountInvariance pins the fan-out contract of the
// sticky-chunk rewrite: the step response — positions and returned frames,
// bit for bit — is identical whatever StepWorkers is, because results are
// keyed by request index and each session's frames depend only on its own
// spec, seed, and cumulative position. The fleet size (11) is chosen to
// not divide evenly into any tested worker count, exercising the ragged
// final chunk. The baseline runs with statmon disabled while the
// multi-worker runs sample every chunk, so the comparison also proves the
// monitor tap is determinism-neutral under concurrent workers.
func TestStreamStepWorkerCountInvariance(t *testing.T) {
	const fleet = 11
	const stepN = 192
	type round struct {
		include bool
		n       int
	}
	rounds := []round{{false, stepN}, {true, 64}, {true, 96}}

	run := func(workers, statmonSample int) [][]StepResult {
		_, ts := newTestServer(t, Options{StepWorkers: workers, StatmonSampleEvery: statmonSample})
		var ids []string
		for i := 0; i < fleet; i++ {
			spec := blockPaperSpec(uint64(9000 + i))
			if i%3 == 1 {
				spec = paperSpec(uint64(9000 + i))
			}
			ids = append(ids, createStream(t, ts.URL, spec).ID)
		}
		var out [][]StepResult
		for _, rd := range rounds {
			resp := postJSON(t, ts.URL+"/v1/streams/step",
				StepRequest{IDs: ids, N: rd.n, IncludeFrames: rd.include})
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("step with %d workers: %d %s", workers, resp.StatusCode, body)
			}
			out = append(out, decodeJSON[[]StepResult](t, resp))
		}
		return out
	}

	want := run(1, -1) // statmon off: the untapped reference
	for _, workers := range []int{3, 16} {
		got := run(workers, 1) // statmon sampling every chunk
		for r := range want {
			if len(got[r]) != len(want[r]) {
				t.Fatalf("workers=%d round %d: %d results, want %d", workers, r, len(got[r]), len(want[r]))
			}
			for i := range want[r] {
				g, w := got[r][i], want[r][i]
				if g.ID != w.ID || g.Start != w.Start || g.Pos != w.Pos || g.Gone != w.Gone {
					t.Fatalf("workers=%d round %d result %d: %+v, want %+v", workers, r, i, g, w)
				}
				if len(g.Frames) != len(w.Frames) {
					t.Fatalf("workers=%d round %d result %d: %d frames, want %d", workers, r, i, len(g.Frames), len(w.Frames))
				}
				for j := range w.Frames {
					if math.Float64bits(g.Frames[j]) != math.Float64bits(w.Frames[j]) {
						t.Fatalf("workers=%d round %d session %d frame %d: %v, want %v",
							workers, r, i, j, g.Frames[j], w.Frames[j])
					}
				}
			}
		}
	}
}

// TestStreamStepValidation exercises the endpoint's rejection paths:
// atomic unknown-id failure (no session moves), bad n, empty batch, and
// the tighter frame-returning bound.
func TestStreamStepValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	info := createStream(t, ts.URL, blockPaperSpec(55))

	cases := []struct {
		name string
		req  StepRequest
		code int
	}{
		{"unknown id", StepRequest{IDs: []string{info.ID, "s999"}, N: 10}, http.StatusNotFound},
		{"zero n", StepRequest{IDs: []string{info.ID}, N: 0}, http.StatusBadRequest},
		{"empty ids", StepRequest{N: 10}, http.StatusBadRequest},
		{"frames over bound", StepRequest{IDs: []string{info.ID}, N: maxStepReturnFrames + 1, IncludeFrames: true}, http.StatusBadRequest},
		{"step over bound", StepRequest{IDs: []string{info.ID}, N: maxStepFrames + 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/streams/step", tc.req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
	// The atomic-validation promise: the unknown-id request moved nothing.
	resp, err := http.Get(ts.URL + "/v1/streams/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeJSON[SessionInfo](t, resp)
	if got.Pos != 0 {
		t.Fatalf("session advanced to %d by a rejected batch", got.Pos)
	}
}
