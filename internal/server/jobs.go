package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"vbrsim/internal/core"
	"vbrsim/internal/impsample"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/queue"
)

// JobRequest is the POST /v1/jobs body. Kind selects the computation and
// which fields apply.
type JobRequest struct {
	// Kind is "fit" (run the Section 3 pipeline on Trace), "qsim-mc"
	// (plain Monte-Carlo overflow estimation on Spec), or "qsim-is"
	// (importance-sampling overflow estimation on Spec).
	Kind string `json:"kind"`

	// Trace is the bytes-per-frame record for fit jobs.
	Trace []float64 `json:"trace,omitempty"`

	// Spec is the traffic model for qsim jobs.
	Spec *modelspec.Spec `json:"spec,omitempty"`
	// Utilization sets the service rate as mean/utilization; ignored when
	// Service is given directly.
	Utilization float64 `json:"utilization,omitempty"`
	// Service is the absolute per-slot service rate mu.
	Service float64 `json:"service,omitempty"`
	// Buffer is the overflow threshold b in units of the marginal mean
	// (the paper's normalized buffer size).
	Buffer float64 `json:"buffer,omitempty"`
	// Horizon is the stop time k; 0 means 10*Buffer, the paper's choice.
	Horizon int `json:"horizon,omitempty"`
	// Twist is the qsim-is background mean shift m*; 0 means 1.6.
	Twist float64 `json:"twist,omitempty"`
	// Replications defaults to 1000.
	Replications int `json:"replications,omitempty"`
	// Seed drives the replication sources.
	Seed uint64 `json:"seed,omitempty"`
	// Tol is the fast-path truncation tolerance (0 = default).
	Tol float64 `json:"tol,omitempty"`
}

// OverflowResult is queue.Result with JSON-safe fields: NormVar is omitted
// (nil) instead of +Inf when no overflow was observed, since +Inf cannot be
// marshaled.
type OverflowResult struct {
	P            float64  `json:"p"`
	StdErr       float64  `json:"std_err"`
	NormVar      *float64 `json:"norm_var,omitempty"`
	Replications int      `json:"replications"`
	Hits         int      `json:"hits"`
	Service      float64  `json:"service"`
	Buffer       float64  `json:"buffer_abs"`
	Horizon      int      `json:"horizon"`
}

func overflowResult(r queue.Result, service, bufAbs float64, horizon int) *OverflowResult {
	out := &OverflowResult{
		P: r.P, StdErr: r.StdErr,
		Replications: r.Replications, Hits: r.Hits,
		Service: service, Buffer: bufAbs, Horizon: horizon,
	}
	if r.P > 0 {
		nv := r.NormVar
		out.NormVar = &nv
	}
	return out
}

// Job is the public view of a queued computation.
type Job struct {
	ID       string     `json:"id"`
	Kind     string     `json:"kind"`
	Status   string     `json:"status"` // queued | running | done | failed
	Error    string     `json:"error,omitempty"`
	Result   any        `json:"result,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

type jobState struct {
	mu  sync.Mutex
	job Job
	req JobRequest
}

func (j *jobState) view() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.job
}

// jobPool runs jobs on a bounded worker pool over a bounded queue, so a
// burst of fit requests cannot exhaust memory or starve the stream handlers.
type jobPool struct {
	s       *Server
	queue   chan *jobState
	wg      sync.WaitGroup
	mu      sync.Mutex
	byID    map[string]*jobState
	nextID  uint64
	stopped bool
}

func newJobPool(s *Server, workers, depth int) *jobPool {
	p := &jobPool{
		s:     s,
		queue: make(chan *jobState, depth),
		byID:  make(map[string]*jobState),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(s.baseCtx)
	}
	return p
}

// submit enqueues a job, or reports that the queue is full. The channel send
// happens under p.mu — the queue is buffered so the select never blocks —
// which makes it mutually exclusive with drain's close(p.queue): a submit
// racing a SIGTERM drain gets errDraining instead of panicking on a send to
// a closed channel.
func (p *jobPool) submit(req JobRequest) (*jobState, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return nil, errDraining
	}
	p.nextID++
	js := &jobState{
		job: Job{ID: fmt.Sprintf("j%d", p.nextID), Kind: req.Kind, Status: "queued", Created: time.Now()},
		req: req,
	}
	select {
	case p.queue <- js:
		p.byID[js.job.ID] = js
		return js, nil
	default:
		return nil, errQueueFull
	}
}

func (p *jobPool) get(id string) (*jobState, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	js, ok := p.byID[id]
	return js, ok
}

func (p *jobPool) list() []Job {
	p.mu.Lock()
	states := make([]*jobState, 0, len(p.byID))
	for _, js := range p.byID {
		states = append(states, js)
	}
	p.mu.Unlock()
	jobs := make([]Job, len(states))
	for i, js := range states {
		jobs[i] = js.view()
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	return jobs
}

// drain rejects further submissions; already-queued jobs still run (unless
// the base context is canceled, which fails them fast).
func (p *jobPool) drain() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.queue)
	}
	p.mu.Unlock()
}

func (p *jobPool) worker(ctx context.Context) {
	defer p.wg.Done()
	for js := range p.queue {
		if ctx.Err() != nil {
			js.fail(ctx.Err())
			continue
		}
		start := time.Now()
		js.mu.Lock()
		js.job.Status = "running"
		js.job.Started = &start
		req := js.req
		js.mu.Unlock()

		result, err := runJob(ctx, req, p.s.metrics)
		secs := time.Since(start).Seconds()
		if err != nil {
			js.fail(err)
			p.s.metrics.jobDone(req.Kind, secs, true)
			continue
		}
		done := time.Now()
		js.mu.Lock()
		js.job.Status = "done"
		js.job.Result = result
		js.job.Finished = &done
		js.mu.Unlock()
		p.s.metrics.jobDone(req.Kind, secs, false)
	}
}

func (js *jobState) fail(err error) {
	now := time.Now()
	js.mu.Lock()
	js.job.Status = "failed"
	js.job.Error = err.Error()
	js.job.Finished = &now
	js.mu.Unlock()
}

// runJob executes one job under the pool's context; cancellation propagates
// into the fit's attenuation replications and the estimators' worker loops.
func runJob(ctx context.Context, req JobRequest, mt *metrics) (any, error) {
	switch req.Kind {
	case "fit":
		m, err := core.FitCtx(ctx, req.Trace, core.FitOptions{Seed: req.Seed})
		if err != nil {
			return nil, err
		}
		spec := modelspec.FromModel(m, "fitted", req.Seed)
		return &spec, nil
	case "qsim-mc", "qsim-is":
		return runQsim(ctx, req, mt)
	}
	return nil, fmt.Errorf("unknown job kind %q", req.Kind)
}

func runQsim(ctx context.Context, req JobRequest, mt *metrics) (any, error) {
	if req.Spec == nil {
		return nil, errors.New("qsim job needs a spec")
	}
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	model, tr, err := req.Spec.Source()
	if err != nil {
		return nil, err
	}
	mean := tr.Target.Mean()
	service := req.Service
	if service <= 0 {
		service, err = queue.UtilizationService(mean, req.Utilization)
		if err != nil {
			return nil, fmt.Errorf("need service > 0 or utilization in (0,1) with a finite-mean marginal: %w", err)
		}
	}
	if req.Buffer <= 0 {
		return nil, errors.New("qsim job needs buffer > 0 (units of the marginal mean)")
	}
	bufAbs := req.Buffer * mean
	horizon := req.Horizon
	if horizon <= 0 {
		horizon = int(10 * req.Buffer)
	}
	reps := req.Replications
	if reps <= 0 {
		reps = 1000
	}
	trunc, err := core.TruncatedPlanForCtx(ctx, model, horizon, req.Tol)
	if err != nil {
		return nil, err
	}

	if req.Kind == "qsim-mc" {
		src := core.ArrivalSource{Fast: trunc, Transform: tr}
		res, err := queue.EstimateOverflowCtx(ctx, src, service, bufAbs, horizon,
			queue.MCOptions{Replications: reps, Seed: req.Seed,
				Progress: mt.observeEstimator})
		if err != nil {
			return nil, err
		}
		return overflowResult(res, service, bufAbs, horizon), nil
	}

	twist := req.Twist
	if twist == 0 {
		twist = 1.6
	}
	res, err := impsample.EstimateCtx(ctx, impsample.Config{
		FastPlan: trunc, Transform: tr,
		Service: service, Buffer: bufAbs, Horizon: horizon,
		Twist: twist, Replications: reps, Seed: req.Seed,
		Progress: mt.observeEstimator,
	})
	if err != nil {
		return nil, err
	}
	return overflowResult(res, service, bufAbs, horizon), nil
}

// ---------------------------------------------------------------------------
// HTTP handlers

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	switch req.Kind {
	case "fit", "qsim-mc", "qsim-is":
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown job kind %q", req.Kind))
		return
	}
	js, err := s.jobs.submit(req)
	if err != nil {
		s.metrics.jobsRejected.With(req.Kind).Inc()
		switch {
		case errors.Is(err, errDraining):
			httpError(w, http.StatusServiceUnavailable, err)
		default:
			httpError(w, http.StatusTooManyRequests, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, js.view())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	js, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, js.view())
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}
