package server

import (
	"math"

	"vbrsim/internal/hosking"
	"vbrsim/internal/obs"
	"vbrsim/internal/par"
	"vbrsim/internal/streamblock"
	"vbrsim/internal/trunk"
)

// metrics binds the daemon's instruments to an obs.Registry. All metric
// names are documented in DESIGN.md §7/§9; keep the two in sync — the
// exposition test and the ci.sh scrape gate parse the rendered output and
// check every documented name.
type metrics struct {
	reg *obs.Registry

	sessionsActive  *obs.Gauge
	sessionsTotal   *obs.Counter
	trunkSessions   *obs.Gauge
	streamsRejected *obs.Counter
	framesStreamed  *obs.Counter
	streamFrames    *obs.Histogram

	shardSessions    *obs.GaugeVec   // shard
	admissionRejects *obs.CounterVec // reason=cap|budget|pressure|drain
	evictions        *obs.Counter
	sweepSeconds     *obs.Histogram
	sessionsSwept    *obs.Counter

	httpRequests  *obs.CounterVec   // endpoint, code
	httpErrors    *obs.CounterVec   // endpoint
	httpSeconds   *obs.HistogramVec // endpoint
	httpInFlight  *obs.Gauge
	shardRequests *obs.CounterVec // shard

	frameEmitSeconds *obs.Histogram
	statmonSampled   *obs.Counter

	jobDuration  *obs.SummaryVec // kind, status=ok|failed
	jobsFailed   *obs.CounterVec // kind
	jobsRejected *obs.CounterVec // kind

	estCompleted *obs.Gauge
	estP         *obs.Gauge
	estStdErr    *obs.Gauge
	estNormVar   *obs.Gauge
	estVarRatio  *obs.Gauge
	estRepsPS    *obs.Gauge

	parRuns  *obs.Counter
	parTasks *obs.Counter
	parBusy  *obs.Counter
	parPeak  *obs.Gauge
	parUtil  *obs.Gauge
}

// newMetrics registers the daemon's instruments on reg and exposes the
// shared plan cache's counters there as well.
func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		reg: reg,
		sessionsActive: reg.Gauge("vbrsim_sessions_active",
			"Streaming sessions currently open."),
		sessionsTotal: reg.Counter("vbrsim_sessions_total",
			"Streaming sessions created since start."),
		trunkSessions: reg.Gauge("vbrsim_trunk_sessions_active",
			"Trunk superposition sessions currently open."),
		streamsRejected: reg.Counter("vbrsim_streams_rejected_total",
			"Stream creations rejected (session cap or drain)."),
		framesStreamed: reg.Counter("vbrsim_frames_streamed_total",
			"Frames written to stream responses."),
		streamFrames: reg.Histogram("vbrsim_stream_request_frames",
			"Frames requested per stream read.",
			[]float64{64, 256, 1024, 4096, 16384, 65536, 262144}),
		shardSessions: reg.GaugeVec("vbrsim_server_shard_sessions",
			"Sessions currently registered per registry shard.", "shard"),
		admissionRejects: reg.CounterVec("vbrsim_server_admission_rejects_total",
			"Session creations shed by admission control, by reason (cap|budget|pressure|drain).",
			"reason"),
		evictions: reg.Counter("vbrsim_server_evictions_total",
			"Sessions closed by the idle evictor."),
		sweepSeconds: reg.Histogram("vbrsim_server_sweep_seconds",
			"Wall time of one idle-evictor registry sweep.",
			[]float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 1}),
		sessionsSwept: reg.Counter("vbrsim_server_swept_sessions_total",
			"Sessions closed across all idle-evictor sweeps."),
		httpRequests: reg.CounterVec("vbrsim_http_requests_total",
			"HTTP requests served, by endpoint and status code.",
			"endpoint", "code"),
		httpErrors: reg.CounterVec("vbrsim_http_errors_total",
			"HTTP requests that finished with a 5xx status, by endpoint.",
			"endpoint"),
		httpSeconds: reg.HistogramVec("vbrsim_http_request_seconds",
			"HTTP request wall time, by endpoint.",
			[]float64{0.0005, 0.002, 0.01, 0.05, 0.2, 1, 5}, "endpoint"),
		httpInFlight: reg.Gauge("vbrsim_http_in_flight",
			"HTTP requests currently being served."),
		shardRequests: reg.CounterVec("vbrsim_server_shard_requests_total",
			"Session lookups that landed on each registry shard.", "shard"),
		frameEmitSeconds: reg.Histogram("vbrsim_server_frame_emit_seconds",
			"Generate+encode+write+flush wall time of one streamed frame chunk.",
			[]float64{1e-5, 1e-4, 5e-4, 0.002, 0.01, 0.05, 0.25, 1}),
		statmonSampled: reg.Counter("vbrsim_statmon_frames_sampled_total",
			"Frames folded into per-session statistical monitors."),
		jobDuration: reg.SummaryVec("vbrsim_job_duration_seconds",
			"Wall time of finished jobs by kind and status (ok|failed).",
			"kind", "status"),
		jobsFailed: reg.CounterVec("vbrsim_jobs_failed_total",
			"Jobs that finished with an error, by kind.", "kind"),
		jobsRejected: reg.CounterVec("vbrsim_jobs_rejected_total",
			"Job submissions rejected (queue full or drain), by kind.", "kind"),
		estCompleted: reg.Gauge("vbrsim_estimator_completed",
			"Replications folded into the latest estimator snapshot."),
		estP: reg.Gauge("vbrsim_estimator_p",
			"Running overflow-probability estimate of the latest estimator run."),
		estStdErr: reg.Gauge("vbrsim_estimator_std_err",
			"Running standard error of the latest estimator run."),
		estNormVar: reg.Gauge("vbrsim_estimator_norm_var",
			"Running normalized variance (variance/p^2) of the latest estimator run."),
		estVarRatio: reg.Gauge("vbrsim_estimator_variance_ratio",
			"IS-vs-MC variance ratio of the latest estimator run (1 for plain MC)."),
		estRepsPS: reg.Gauge("vbrsim_estimator_reps_per_sec",
			"Replication throughput of the latest estimator run."),
		parRuns: reg.Counter("vbrsim_par_runs_total",
			"Worker-pool fan-out runs observed."),
		parTasks: reg.Counter("vbrsim_par_tasks_total",
			"Tasks executed across observed fan-out runs."),
		parBusy: reg.Counter("vbrsim_par_busy_seconds_total",
			"Summed worker busy time across observed fan-out runs."),
		parPeak: reg.Gauge("vbrsim_par_peak_in_flight",
			"Peak concurrently running workers in the latest fan-out run."),
		parUtil: reg.Gauge("vbrsim_par_utilization",
			"Worker utilization (busy/(wall*workers)) of the latest fan-out run."),
	}
	hosking.Shared.RegisterMetrics(reg)
	streamblock.RegisterMetrics(reg)
	trunk.RegisterMetrics(reg)
	return m
}

// jobDone records a finished job's wall time. Failed jobs land in the
// status="failed" duration series (they consume worker time too) and bump
// the per-kind failure counter.
func (m *metrics) jobDone(kind string, seconds float64, failed bool) {
	status := "ok"
	if failed {
		status = "failed"
		m.jobsFailed.With(kind).Inc()
	}
	m.jobDuration.Observe(seconds, kind, status)
}

// observeEstimator exports a convergence snapshot as the estimator gauges.
// Non-finite values (p=0 early in a rare-event run) are skipped so the
// exposition never carries +Inf from a half-converged run.
func (m *metrics) observeEstimator(c obs.Convergence) {
	m.estCompleted.Set(float64(c.Completed))
	setFinite(m.estP, c.P)
	setFinite(m.estStdErr, c.StdErr)
	setFinite(m.estNormVar, c.NormVar)
	setFinite(m.estVarRatio, c.VarianceRatio)
	m.estRepsPS.Set(c.RepsPerSec)
}

func setFinite(g *obs.Gauge, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.Set(v)
}

// observePar folds one worker-pool run into the par series.
func (m *metrics) observePar(st par.RunStats) {
	m.parRuns.Add(float64(st.Runs))
	m.parTasks.Add(float64(st.Tasks))
	m.parBusy.Add(st.BusyTotal().Seconds())
	m.parPeak.Set(float64(st.PeakInFlight))
	m.parUtil.Set(st.Utilization())
}
