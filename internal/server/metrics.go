package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"vbrsim/internal/hosking"
)

// metrics is the daemon's dependency-free counter registry, rendered in
// Prometheus text exposition format by serveMetrics. Counters are atomics;
// the per-kind job histograms-in-miniature (sum + count) sit under a mutex
// because they are touched once per job, not per frame.
type metrics struct {
	sessionsActive  atomic.Int64
	sessionsTotal   atomic.Uint64
	streamsRejected atomic.Uint64
	framesStreamed  atomic.Uint64
	jobsRejected    atomic.Uint64

	mu   sync.Mutex
	jobs map[string]*jobKindStats
}

type jobKindStats struct {
	completed   uint64
	failed      uint64
	durationSum float64 // seconds, completed jobs only
}

func newMetrics() *metrics {
	return &metrics{jobs: make(map[string]*jobKindStats)}
}

func (m *metrics) jobDone(kind string, seconds float64, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.jobs[kind]
	if s == nil {
		s = &jobKindStats{}
		m.jobs[kind] = s
	}
	if failed {
		s.failed++
		return
	}
	s.completed++
	s.durationSum += seconds
}

// serveMetrics renders the registry plus the process-wide plan-cache
// counters. Names are documented in DESIGN.md; keep the two in sync.
func (m *metrics) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("vbrsim_sessions_active", "Streaming sessions currently open.", m.sessionsActive.Load())
	counter("vbrsim_sessions_total", "Streaming sessions created since start.", m.sessionsTotal.Load())
	counter("vbrsim_streams_rejected_total", "Stream creations rejected (session cap or drain).", m.streamsRejected.Load())
	counter("vbrsim_frames_streamed_total", "Frames written to stream responses.", m.framesStreamed.Load())
	counter("vbrsim_jobs_rejected_total", "Job submissions rejected (queue full or drain).", m.jobsRejected.Load())

	m.mu.Lock()
	kinds := make([]string, 0, len(m.jobs))
	for k := range m.jobs {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "# HELP vbrsim_job_duration_seconds Wall time of completed jobs by kind.\n# TYPE vbrsim_job_duration_seconds summary\n")
	for _, k := range kinds {
		s := m.jobs[k]
		fmt.Fprintf(w, "vbrsim_job_duration_seconds_sum{kind=%q} %g\n", k, s.durationSum)
		fmt.Fprintf(w, "vbrsim_job_duration_seconds_count{kind=%q} %d\n", k, s.completed)
	}
	fmt.Fprintf(w, "# HELP vbrsim_jobs_failed_total Jobs that finished with an error, by kind.\n# TYPE vbrsim_jobs_failed_total counter\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "vbrsim_jobs_failed_total{kind=%q} %d\n", k, m.jobs[k].failed)
	}
	m.mu.Unlock()

	cs := hosking.Shared.Stats()
	counter("vbrsim_plan_cache_hits_total", "Durbin-Levinson plan cache hits.", cs.Hits)
	counter("vbrsim_plan_cache_misses_total", "Durbin-Levinson plan cache misses (builds).", cs.Misses)
	counter("vbrsim_plan_cache_evictions_total", "Plans evicted from the cache.", cs.Evictions)
	counter("vbrsim_plan_cache_singleflight_waits_total", "Lookups that waited on an in-flight build.", cs.SingleflightWaits)
}
