package acf

import (
	"math"
	"testing"
)

func TestFitSRDExponentialsSingle(t *testing.T) {
	truth := Exponential{Lambda: 0.05}
	emp := Table(truth, 100)
	w, r, err := FitSRDExponentials(emp, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || w[0] != 1 {
		t.Fatalf("weights = %v", w)
	}
	if math.Abs(r[0]-0.05) > 1e-9 {
		t.Errorf("rate = %v, want 0.05", r[0])
	}
}

func TestFitSRDExponentialsTwoRecovers(t *testing.T) {
	// A genuinely bimodal decay: fast component + slow component.
	wTrue := []float64{0.6, 0.4}
	lTrue := []float64{0.02, 0.4}
	emp := make([]float64, 101)
	emp[0] = 1
	for k := 1; k <= 100; k++ {
		emp[k] = wTrue[0]*math.Exp(-lTrue[1]*float64(k)) + wTrue[1]*math.Exp(-lTrue[0]*float64(k))
	}
	// Note: truth written with (fast weight 0.6, slow weight 0.4); rates
	// returned ascending so slow rate first.
	w, r, err := FitSRDExponentials(emp, 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("collapsed to %d components", len(w))
	}
	if r[0] >= r[1] {
		t.Fatalf("rates not ascending: %v", r)
	}
	// Reconstruction error must be tiny across the head.
	for k := 1; k <= 79; k++ {
		model := w[0]*math.Exp(-r[0]*float64(k)) + w[1]*math.Exp(-r[1]*float64(k))
		if math.Abs(model-emp[k]) > 5e-3 {
			t.Fatalf("lag %d: model %v vs truth %v", k, model, emp[k])
		}
	}
	// Parameters near truth (slow component: rate 0.02 weight 0.4).
	if math.Abs(r[0]-0.02) > 0.01 {
		t.Errorf("slow rate = %v, want ~0.02", r[0])
	}
	if math.Abs(w[0]-0.4) > 0.1 {
		t.Errorf("slow weight = %v, want ~0.4", w[0])
	}
}

func TestFitSRDExponentialsCollapsesOnSingle(t *testing.T) {
	// Pure single-exponential data: the two-component fit must either
	// collapse to one component or reproduce the curve exactly.
	truth := Exponential{Lambda: 0.1}
	emp := Table(truth, 100)
	w, r, err := FitSRDExponentials(emp, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < 60; k++ {
		var model float64
		for i := range w {
			model += w[i] * math.Exp(-r[i]*float64(k))
		}
		if math.Abs(model-emp[k]) > 1e-3 {
			t.Fatalf("lag %d: model %v vs truth %v", k, model, emp[k])
		}
	}
}

func TestFitSRDExponentialsValidation(t *testing.T) {
	emp := Table(Exponential{Lambda: 0.1}, 50)
	if _, _, err := FitSRDExponentials(emp, 2, 1); err == nil {
		t.Error("tiny knee accepted")
	}
	if _, _, err := FitSRDExponentials(emp, 30, 3); err == nil {
		t.Error("3 components accepted")
	}
	if _, _, err := FitSRDExponentials(emp, 100, 1); err == nil {
		t.Error("knee beyond ACF accepted")
	}
}

func TestFitCompositeMultiImprovesBimodalHead(t *testing.T) {
	// Composite truth with a two-exponential head.
	truth := Composite{
		Weights: []float64{0.5, 0.5},
		Rates:   []float64{0.01, 0.3},
		L:       0, Beta: 0.25, Knee: 60,
	}
	truth.L = truth.srdValue(60) * math.Pow(60, 0.25)
	emp := Table(truth, 400)
	multi, err := FitCompositeMulti(emp, FitOptions{Knee: 60, Beta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	single, err := FitComposite(emp, FitOptions{Knee: 60, Beta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if srdSSE(emp, multi) > srdSSE(emp, single) {
		t.Errorf("multi SSE %v worse than single %v", srdSSE(emp, multi), srdSSE(emp, single))
	}
	if err := multi.Validate(); err != nil {
		t.Errorf("multi fit invalid: %v", err)
	}
	if !multi.ConvexAtKnee() {
		t.Error("multi fit not convex at knee")
	}
	if gap := multi.ContinuityGap(); gap > 1e-9 {
		t.Errorf("multi fit continuity gap %v", gap)
	}
}

func TestMultiExponentialCompositeGeneratable(t *testing.T) {
	// A fitted two-exponential composite must be a valid correlation
	// function (checked indirectly through convexity + continuity, and
	// directly by evaluating bounds).
	c := Composite{
		Weights: []float64{0.5, 0.5},
		Rates:   []float64{0.01, 0.3},
		L:       1.2, Beta: 0.25, Knee: 60,
	}
	c = c.Continuous()
	c, err := c.EnsureConvex()
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for k := 1; k < 500; k++ {
		v := c.At(k)
		if v <= 0 || v > prev {
			t.Fatalf("not positive decreasing at lag %d: %v (prev %v)", k, v, prev)
		}
		prev = v
	}
}

func TestCompensateMultiExponential(t *testing.T) {
	rhat := Composite{
		Weights: []float64{0.5, 0.5},
		Rates:   []float64{0.01, 0.3},
		L:       1.2, Beta: 0.25, Knee: 60,
	}
	rhat = rhat.Continuous()
	a := 0.9
	comp, err := Compensate(rhat, a)
	if err != nil {
		t.Fatal(err)
	}
	// Structure preserved: still two components with the same weights.
	if len(comp.Weights) != 2 || comp.Weights[0] != 0.5 {
		t.Fatalf("compensation lost the multi-exponential head: %+v", comp)
	}
	// Tail raised by 1/a.
	for _, k := range []int{comp.Knee, comp.Knee + 100} {
		want := rhat.L / a * math.Pow(float64(k), -rhat.Beta)
		if math.Abs(comp.At(k)-want) > 1e-9 {
			t.Errorf("compensated tail at %d = %v, want %v", k, comp.At(k), want)
		}
	}
	// Continuity at the knee within bisection tolerance.
	if gap := comp.ContinuityGap(); gap > 1e-6 {
		t.Errorf("continuity gap %v", gap)
	}
	// Rates rescaled by a common factor: ratio preserved.
	r0 := comp.Rates[0] / rhat.Rates[0]
	r1 := comp.Rates[1] / rhat.Rates[1]
	if math.Abs(r0-r1) > 1e-9 {
		t.Errorf("rates not commonly rescaled: %v vs %v", r0, r1)
	}
	if r0 >= 1 {
		t.Errorf("head not slowed: factor %v", r0)
	}
}

func TestConvexAtKneeMultiExponential(t *testing.T) {
	// A steep two-exponential head meeting a flat tail is convex; a flat
	// head meeting a steep tail is not.
	convex := Composite{
		Weights: []float64{0.5, 0.5},
		Rates:   []float64{0.1, 0.5},
		L:       0, Beta: 0.2, Knee: 30,
	}
	convex.L = convex.srdValue(30) * math.Pow(30, 0.2)
	if !convex.ConvexAtKnee() {
		t.Error("steep head judged non-convex")
	}
	concave := Composite{
		Weights: []float64{0.5, 0.5},
		Rates:   []float64{0.0001, 0.0002},
		L:       0, Beta: 0.9, Knee: 30,
	}
	concave.L = concave.srdValue(30) * math.Pow(30, 0.9)
	if concave.ConvexAtKnee() {
		t.Error("flat head with steep tail judged convex")
	}
}
