// Package acf provides the autocorrelation-function models at the heart of
// the paper's unified approach, together with the fitting machinery of
// Section 3.2:
//
//   - exponential SRD models exp(-lambda*k),
//   - power-law LRD models L*k^(-beta),
//   - the composite "knee" model of eqs. (10)-(12) that splices the two,
//   - the exact fractional Gaussian noise (fGn) ACF,
//   - knee detection and least-squares fitting from an empirical ACF, and
//   - attenuation compensation (Step 4, eq. 14).
//
// An ACF model maps a non-negative integer lag to a correlation; every model
// returns exactly 1 at lag 0.
package acf

import (
	"errors"
	"fmt"
	"math"

	"vbrsim/internal/fft"
	"vbrsim/internal/stats"
)

// Model is an autocorrelation function r(k) defined for integer lags k >= 0
// with r(0) == 1.
type Model interface {
	// At returns r(k). Implementations must return 1 for k <= 0.
	At(k int) float64
}

// Table materializes the first n+1 lags (0..n) of a model.
func Table(m Model, n int) []float64 {
	out := make([]float64, n+1)
	for k := range out {
		out[k] = m.At(k)
	}
	return out
}

// ---------------------------------------------------------------------------
// Elementary models

// Exponential is the SRD model r(k) = exp(-Lambda*k).
type Exponential struct {
	Lambda float64
}

// At returns exp(-Lambda*k).
func (e Exponential) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	return math.Exp(-e.Lambda * float64(k))
}

// PowerLaw is the LRD model r(k) = L * k^(-Beta) for k >= 1.
// Beta in (0,1) corresponds to Hurst parameter H = 1 - Beta/2.
type PowerLaw struct {
	L    float64
	Beta float64
}

// At returns L*k^(-Beta), clamped to 1.
func (p PowerLaw) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	v := p.L * math.Pow(float64(k), -p.Beta)
	if v > 1 {
		return 1
	}
	return v
}

// Hurst returns the Hurst parameter implied by the power-law decay.
func (p PowerLaw) Hurst() float64 { return 1 - p.Beta/2 }

// FGN is the exact autocorrelation of fractional Gaussian noise with Hurst
// parameter H: r(k) = ((k+1)^2H - 2k^2H + (k-1)^2H)/2.
type FGN struct {
	H float64
}

// At returns the exact fGn autocorrelation at lag k.
func (f FGN) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	twoH := 2 * f.H
	kf := float64(k)
	return 0.5 * (math.Pow(kf+1, twoH) - 2*math.Pow(kf, twoH) + math.Pow(kf-1, twoH))
}

// White is the trivial iid model: r(0)=1, r(k)=0 otherwise.
type White struct{}

// At returns 1 at lag 0 and 0 elsewhere.
func (White) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Composite knee model (paper eqs. 10-12)

// Composite is the paper's unified ACF:
//
//	r(k) = sum_i w_i exp(-lambda_i k)   for 1 <= k < Knee  (SRD part)
//	r(k) = L k^(-Beta)                  for k >= Knee      (LRD part)
//
// The weights should sum to 1 (eq. 11) so that r(0+) -> 1, and continuity at
// the knee (eq. 12) ties L to the exponential sum; both are the fitter's
// responsibility, not enforced here, so that deliberately discontinuous
// variants can be explored.
type Composite struct {
	Weights []float64 // w_i, should sum to 1
	Rates   []float64 // lambda_i, parallel to Weights
	L       float64   // power-law level
	Beta    float64   // power-law exponent (H = 1 - Beta/2)
	Knee    int       // first lag of the LRD regime, Kt
}

// At evaluates the composite model at lag k.
func (c Composite) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	if k < c.Knee {
		var s float64
		for i, w := range c.Weights {
			s += w * math.Exp(-c.Rates[i]*float64(k))
		}
		return s
	}
	v := c.L * math.Pow(float64(k), -c.Beta)
	if v > 1 {
		return 1
	}
	return v
}

// Hurst returns the Hurst parameter implied by the LRD tail.
func (c Composite) Hurst() float64 { return 1 - c.Beta/2 }

// ContinuityGap returns the difference between the SRD and LRD values at the
// knee, |sum_i w_i exp(-lambda_i Kt) - L Kt^-Beta| (eq. 12 residual).
func (c Composite) ContinuityGap() float64 {
	if c.Knee <= 0 {
		return 0
	}
	var srd float64
	for i, w := range c.Weights {
		srd += w * math.Exp(-c.Rates[i]*float64(c.Knee))
	}
	lrd := c.L * math.Pow(float64(c.Knee), -c.Beta)
	return math.Abs(srd - lrd)
}

// Validate checks structural invariants: matching weight/rate lengths,
// positive rates, Beta in (0,1), positive L, positive knee.
func (c Composite) Validate() error {
	if len(c.Weights) != len(c.Rates) {
		return errors.New("acf: composite weights/rates length mismatch")
	}
	if len(c.Weights) == 0 {
		return errors.New("acf: composite has no SRD components")
	}
	for i, r := range c.Rates {
		if r <= 0 {
			return fmt.Errorf("acf: composite rate %d is non-positive", i)
		}
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("acf: composite beta %v outside (0,1)", c.Beta)
	}
	if c.L <= 0 {
		return errors.New("acf: composite L is non-positive")
	}
	if c.Knee <= 1 {
		return errors.New("acf: composite knee must exceed 1")
	}
	return nil
}

// Continuous returns a copy of the composite adjusted so that the SRD and
// LRD branches meet exactly at the knee (eq. 12). For a single-exponential
// SRD the rate is re-solved as in eq. (14), preserving the LRD tail exactly;
// for multi-exponential SRDs the power-law level L is re-anchored instead.
// Exact continuity matters in practice: a composite with even a small jump
// at the knee is generally not a positive-definite correlation function, so
// Hosking's recursion breaks down shortly after the knee on the raw fit.
func (c Composite) Continuous() Composite {
	if c.Knee <= 0 {
		return c
	}
	out := c
	lrdAtKnee := c.L * math.Pow(float64(c.Knee), -c.Beta)
	if len(c.Weights) == 1 && lrdAtKnee > 0 && lrdAtKnee < 1 {
		out.Weights = []float64{1}
		out.Rates = []float64{-math.Log(lrdAtKnee) / float64(c.Knee)}
		return out
	}
	var srdAtKnee float64
	for i, w := range c.Weights {
		srdAtKnee += w * math.Exp(-c.Rates[i]*float64(c.Knee))
	}
	out.L = srdAtKnee * math.Pow(float64(c.Knee), c.Beta)
	return out
}

// srdValue returns the SRD branch value sum_i w_i exp(-lambda_i k).
func (c Composite) srdValue(k float64) float64 {
	var s float64
	for i, w := range c.Weights {
		s += w * math.Exp(-c.Rates[i]*k)
	}
	return s
}

// srdSlope returns the derivative of the SRD branch, -sum w_i lambda_i
// exp(-lambda_i k) (negative for decaying components).
func (c Composite) srdSlope(k float64) float64 {
	var s float64
	for i, w := range c.Weights {
		s -= w * c.Rates[i] * math.Exp(-c.Rates[i]*k)
	}
	return s
}

// ConvexAtKnee reports whether the splice at the knee is convex: the
// right (power-law) derivative must be at least the left (exponential-sum)
// derivative, -beta*r_L(Kt)/Kt >= srdSlope(Kt). A decreasing convex
// correlation sequence is positive definite (Pólya's criterion), so a
// continuous convex composite is always a valid correlation function; a
// concave corner at the knee generally is not.
func (c Composite) ConvexAtKnee() bool {
	if c.Knee <= 0 || len(c.Weights) == 0 {
		return true
	}
	kt := float64(c.Knee)
	lrdSlope := -c.Beta * c.L * math.Pow(kt, -c.Beta) / kt
	return lrdSlope >= c.srdSlope(kt)-1e-15
}

// EnsureConvex returns a copy whose knee splice is convex (and therefore
// positive definite). If the continuity-adjusted rate is too flat
// (lambda < beta/Knee), the knee is pushed out to the lag where the
// power-law tail equals e^(-beta); there the continuity rate is exactly
// beta/Knee, making the splice C^1. The LRD tail is preserved exactly.
// An error is returned when the required knee would be absurd (tail level
// inconsistent with beta).
func (c Composite) EnsureConvex() (Composite, error) {
	if c.ConvexAtKnee() {
		return c, nil
	}
	limit := 4 * c.Knee
	if limit < 500 {
		limit = 500
	}
	if len(c.Weights) == 1 {
		// Single exponential: closed form. Required:
		// L * Kt^-beta <= e^-beta  <=>  Kt >= (L e^beta)^(1/beta).
		kt := int(math.Ceil(math.Pow(c.L*math.Exp(c.Beta), 1/c.Beta)))
		if kt <= c.Knee {
			kt = c.Knee + 1
		}
		if kt > limit {
			return Composite{}, fmt.Errorf(
				"acf: convexity requires knee %d (beyond limit %d) — the ACF tail level %.3g is inconsistent with beta %.3g",
				kt, limit, c.L, c.Beta)
		}
		out := c
		out.Knee = kt
		out = out.Continuous()
		if !out.ConvexAtKnee() {
			// Continuity at the C^1 point gives lambda = beta/Kt exactly;
			// guard against rounding leaving it epsilon short.
			out.Rates = []float64{out.Beta / float64(out.Knee)}
		}
		return out, nil
	}
	// Multi-exponential: push the knee outward, re-anchoring L each time,
	// until the splice turns convex (the exponential slope decays
	// exponentially in Kt, the power-law slope only as 1/Kt).
	out := c
	for kt := c.Knee + 1; kt <= limit; kt++ {
		out.Knee = kt
		out = out.Continuous()
		if out.ConvexAtKnee() {
			return out, nil
		}
	}
	return Composite{}, fmt.Errorf("acf: no convex knee found up to limit %d", limit)
}

// PaperComposite returns the fit the paper reports for "Last Action Hero"
// (eq. 13): r(k) = exp(-0.00565 k) for k < 60 and 1.59468 k^-0.2 for k >= 60.
// The reported coefficients leave a small (~0.013) discontinuity at the
// knee; call Continuous() before feeding the model to a generator.
func PaperComposite() Composite {
	return Composite{
		Weights: []float64{1},
		Rates:   []float64{0.00565093},
		L:       1.59468,
		Beta:    0.2,
		Knee:    60,
	}
}

// ---------------------------------------------------------------------------
// Scaled model (paper eq. 15: GOP rescaling r(k) = r_I(k / K_I))

// Scaled stretches a base model along the lag axis by Factor, evaluating the
// base at the fractional lag k/Factor with linear interpolation. It realizes
// eq. (15): the ACF of the full I-B-P stream is the I-frame ACF rescaled by
// the GOP period.
type Scaled struct {
	Base   Model
	Factor int
}

// At returns Base(k/Factor) with linear interpolation between integer lags.
func (s Scaled) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	if s.Factor <= 1 {
		return s.Base.At(k)
	}
	pos := float64(k) / float64(s.Factor)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 {
		return s.Base.At(lo)
	}
	return s.Base.At(lo)*(1-frac) + s.Base.At(lo+1)*frac
}

// ---------------------------------------------------------------------------
// Knee detection

// DetectKnee locates the lag at which an empirical ACF transitions from fast
// exponential decay to slow power-law decay. It slides a candidate knee
// across [minKnee, maxKnee], fits an exponential below and a power law at or
// above the candidate, and returns the candidate minimizing total squared
// error in correlation space. The empirical acf must include lag 0.
func DetectKnee(empirical []float64, minKnee, maxKnee int) (int, error) {
	return detectKnee(empirical, minKnee, maxKnee, 0)
}

// detectKnee is DetectKnee with an optional fixed power-law exponent
// (beta > 0), so the knee choice stays consistent with a fixed-beta fit.
func detectKnee(empirical []float64, minKnee, maxKnee int, beta float64) (int, error) {
	if minKnee < 4 {
		minKnee = 4
	}
	if maxKnee >= len(empirical)-4 {
		maxKnee = len(empirical) - 5
	}
	if maxKnee < minKnee {
		return 0, errors.New("acf: ACF too short for knee detection")
	}
	best, bestErr := minKnee, math.Inf(1)
	for kt := minKnee; kt <= maxKnee; kt++ {
		e, errSRD := fitExponential(empirical, 1, kt)
		var p PowerLaw
		var errLRD error
		if beta > 0 {
			p, errLRD = fitPowerLawFixedBeta(empirical, beta, kt, len(empirical)-1)
		} else {
			p, errLRD = fitPowerLaw(empirical, kt, len(empirical)-1)
		}
		if errSRD != nil || errLRD != nil {
			continue
		}
		var sse float64
		for k := 1; k < kt; k++ {
			d := empirical[k] - e.At(k)
			sse += d * d
		}
		for k := kt; k < len(empirical); k++ {
			d := empirical[k] - p.At(k)
			sse += d * d
		}
		if sse < bestErr {
			best, bestErr = kt, sse
		}
	}
	if math.IsInf(bestErr, 1) {
		return 0, errors.New("acf: knee detection failed on all candidates")
	}
	return best, nil
}

// fitExponential fits r(k) ~ exp(-lambda k) on lags [lo, hi) by least squares
// on log r(k) against k through the origin (r(0)=1 pins the intercept).
func fitExponential(empirical []float64, lo, hi int) (Exponential, error) {
	var sxx, sxy float64
	n := 0
	for k := lo; k < hi && k < len(empirical); k++ {
		if empirical[k] <= 0 {
			continue
		}
		x := float64(k)
		y := math.Log(empirical[k])
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 || sxx == 0 {
		return Exponential{}, errors.New("acf: not enough positive lags for exponential fit")
	}
	lambda := -sxy / sxx
	if lambda <= 0 {
		return Exponential{}, errors.New("acf: exponential fit produced non-positive rate")
	}
	return Exponential{Lambda: lambda}, nil
}

// fitPowerLaw fits r(k) ~ L k^-beta on lags [lo, hi] by log-log least squares.
func fitPowerLaw(empirical []float64, lo, hi int) (PowerLaw, error) {
	var ks, rs []float64
	for k := lo; k <= hi && k < len(empirical); k++ {
		if empirical[k] > 0 {
			ks = append(ks, float64(k))
			rs = append(rs, empirical[k])
		}
	}
	slope, intercept, _, err := stats.LogLogFit(ks, rs)
	if err != nil {
		return PowerLaw{}, err
	}
	beta := -slope
	if beta <= 0 {
		return PowerLaw{}, errors.New("acf: power-law fit produced non-positive beta")
	}
	return PowerLaw{L: math.Pow(10, intercept), Beta: beta}, nil
}

// fitPowerLawFixedBeta fits only the level L of r(k) ~ L k^-beta on lags
// [lo, hi] by least squares in log space (which reduces to a mean).
func fitPowerLawFixedBeta(empirical []float64, beta float64, lo, hi int) (PowerLaw, error) {
	var sum float64
	n := 0
	for k := lo; k <= hi && k < len(empirical); k++ {
		if empirical[k] > 0 {
			sum += math.Log(empirical[k]) + beta*math.Log(float64(k))
			n++
		}
	}
	if n == 0 {
		return PowerLaw{}, errors.New("acf: no positive tail lags for fixed-beta fit")
	}
	return PowerLaw{L: math.Exp(sum / float64(n)), Beta: beta}, nil
}

// FitOptions controls FitComposite.
type FitOptions struct {
	// Knee forces the knee lag; 0 means detect automatically.
	Knee int
	// MinKnee/MaxKnee bound automatic knee detection; zero values default to
	// 10 and len(acf)/3.
	MinKnee, MaxKnee int
	// Beta forces the LRD exponent (e.g. from a Hurst estimate, Beta=2-2H);
	// 0 means fit it from the tail.
	Beta float64
	// AllowDiscontinuous skips the final continuity adjustment (eq. 12).
	// Discontinuous composites are generally not positive definite and
	// cannot be fed to the generators; this exists for fit diagnostics only.
	AllowDiscontinuous bool
}

// FitComposite fits the composite knee model to an empirical ACF
// (empirical[0] must be lag 0). It implements Step 2 of the paper: one
// exponential below the knee, a power law above it, with the power-law level
// re-anchored for continuity at the knee (eq. 12).
func FitComposite(empirical []float64, opt FitOptions) (Composite, error) {
	if len(empirical) < 16 {
		return Composite{}, errors.New("acf: ACF too short to fit composite model")
	}
	knee := opt.Knee
	if knee == 0 {
		minK, maxK := opt.MinKnee, opt.MaxKnee
		if minK == 0 {
			minK = 10
		}
		if maxK == 0 {
			maxK = len(empirical) / 3
		}
		var err error
		// Detect the knee with the same beta the final fit will use, so
		// the two stages cannot disagree about where the tail starts.
		knee, err = detectKnee(empirical, minK, maxK, opt.Beta)
		if err != nil {
			return Composite{}, err
		}
	}
	if knee <= 1 || knee >= len(empirical)-2 {
		return Composite{}, fmt.Errorf("acf: knee %d out of range", knee)
	}
	expo, err := fitExponential(empirical, 1, knee)
	if err != nil {
		return Composite{}, err
	}
	var pl PowerLaw
	if opt.Beta > 0 {
		pl, err = fitPowerLawFixedBeta(empirical, opt.Beta, knee, len(empirical)-1)
	} else {
		pl, err = fitPowerLaw(empirical, knee, len(empirical)-1)
	}
	if err != nil {
		return Composite{}, err
	}
	c := Composite{
		Weights: []float64{1},
		Rates:   []float64{expo.Lambda},
		L:       pl.L,
		Beta:    pl.Beta,
		Knee:    knee,
	}
	if !opt.AllowDiscontinuous {
		c = c.Continuous()
		// A continuous but concave corner at the knee is not positive
		// definite; restore convexity (pushing the knee out if needed) so
		// the fitted model can always drive a generator.
		c, err = c.EnsureConvex()
		if err != nil {
			return Composite{}, err
		}
	}
	if err := c.Validate(); err != nil {
		return Composite{}, err
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Attenuation compensation (Step 4, eq. 14)

// Compensate returns the background-process target ACF for Step 4 of the
// paper: given the desired foreground ACF rhat (a composite model) and the
// measured attenuation factor a in (0,1], the background must carry
// r(k) = rhat(k)/a in the LRD regime, and an exponential with rate lambda
// solving exp(-lambda*Kt) = rhat(Kt)/a in the SRD regime (eq. 14). Values
// are clamped below 1 to remain a valid correlation.
func Compensate(rhat Composite, a float64) (Composite, error) {
	if a <= 0 || a > 1 {
		return Composite{}, fmt.Errorf("acf: attenuation %v outside (0,1]", a)
	}
	target := rhat.At(rhat.Knee) / a
	if target >= 1 {
		// The compensated knee correlation saturates; fall back to a tiny
		// positive rate so the model remains valid.
		target = 1 - 1e-9
	}
	var out Composite
	if len(rhat.Weights) > 1 {
		// Multi-exponential head: preserve the two-timescale structure by
		// rescaling all rates with a common factor s <= 1 (slowing the
		// head) until the head meets the raised tail at the knee.
		kt := float64(rhat.Knee)
		valueAt := func(s float64) float64 {
			var v float64
			for i, w := range rhat.Weights {
				v += w * math.Exp(-rhat.Rates[i]*s*kt)
			}
			return v
		}
		lo, hi := 1e-6, 1.0
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if valueAt(mid) > target {
				lo = mid
			} else {
				hi = mid
			}
		}
		s := (lo + hi) / 2
		rates := make([]float64, len(rhat.Rates))
		for i, r := range rhat.Rates {
			rates[i] = r * s
		}
		out = Composite{
			Weights: append([]float64(nil), rhat.Weights...),
			Rates:   rates,
			L:       rhat.L / a,
			Beta:    rhat.Beta,
			Knee:    rhat.Knee,
		}
	} else {
		lambda := -math.Log(target) / float64(rhat.Knee)
		out = Composite{
			Weights: []float64{1},
			Rates:   []float64{lambda},
			L:       rhat.L / a,
			Beta:    rhat.Beta,
			Knee:    rhat.Knee,
		}
	}
	// Raising the tail by 1/a flattens the continuity rate and can tip a
	// marginally convex knee into concavity; restore convexity so the
	// compensated model remains a valid correlation function.
	out, err := out.EnsureConvex()
	if err != nil {
		return Composite{}, err
	}
	if err := out.Validate(); err != nil {
		return Composite{}, err
	}
	return out, nil
}

// SpectralDensity evaluates the spectral density implied by the model's
// first n lags: f(w_j) = sum_k r(|k|) e^{-i w_j k} over the circulant
// embedding of size 2n, returned at the non-negative frequencies
// w_j = pi j / n, j = 0..n. Negative values reveal that the truncated
// sequence is not positive semi-definite (the same check Davies-Harte
// construction performs); MinEigenvalue summarizes that directly.
func SpectralDensity(m Model, n int) (freqs, density []float64, err error) {
	if n < 2 {
		return nil, nil, errors.New("acf: spectral density needs n >= 2")
	}
	size := fft.NextPowerOfTwo(2 * n)
	c := make([]complex128, size)
	half := size / 2
	for j := 0; j <= half; j++ {
		c[j] = complex(m.At(j), 0)
	}
	for j := half + 1; j < size; j++ {
		c[j] = c[size-j]
	}
	if err := fft.Forward(c); err != nil {
		return nil, nil, err
	}
	freqs = make([]float64, half+1)
	density = make([]float64, half+1)
	for j := 0; j <= half; j++ {
		freqs[j] = math.Pi * float64(j) / float64(half)
		density[j] = real(c[j])
	}
	return freqs, density, nil
}

// MinEigenvalue returns the smallest circulant-embedding eigenvalue of the
// model truncated at n lags. Non-negative means the truncation is a valid
// (embeddable) correlation sequence.
func MinEigenvalue(m Model, n int) (float64, error) {
	_, density, err := SpectralDensity(m, n)
	if err != nil {
		return 0, err
	}
	min := math.Inf(1)
	for _, v := range density {
		if v < min {
			min = v
		}
	}
	return min, nil
}

// Clamped wraps a model and clamps every lag's value into [-1+eps, 1] and
// additionally caps values at lag >= 1 strictly below 1, which keeps
// Durbin-Levinson recursions numerically safe.
type Clamped struct {
	Base Model
}

// At returns the clamped correlation.
func (c Clamped) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	v := c.Base.At(k)
	const lim = 1 - 1e-9
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}
