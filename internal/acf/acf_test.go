package acf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllModelsLagZeroIsOne(t *testing.T) {
	models := map[string]Model{
		"exponential": Exponential{Lambda: 0.01},
		"powerlaw":    PowerLaw{L: 1.5, Beta: 0.2},
		"fgn":         FGN{H: 0.9},
		"white":       White{},
		"composite":   PaperComposite(),
		"scaled":      Scaled{Base: PaperComposite(), Factor: 12},
		"clamped":     Clamped{Base: PaperComposite()},
	}
	for name, m := range models {
		if got := m.At(0); got != 1 {
			t.Errorf("%s.At(0) = %v, want 1", name, got)
		}
		if got := m.At(-3); got != 1 {
			t.Errorf("%s.At(-3) = %v, want 1", name, got)
		}
	}
}

func TestExponentialDecay(t *testing.T) {
	e := Exponential{Lambda: 0.1}
	for k := 1; k < 100; k++ {
		want := math.Exp(-0.1 * float64(k))
		if got := e.At(k); math.Abs(got-want) > 1e-15 {
			t.Fatalf("At(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestPowerLawClamp(t *testing.T) {
	p := PowerLaw{L: 5, Beta: 0.2}
	if got := p.At(1); got != 1 {
		t.Errorf("At(1) with L>1 = %v, want clamp to 1", got)
	}
	if got := p.At(10000); got >= 1 {
		t.Errorf("At(1e4) = %v, want < 1", got)
	}
}

func TestPowerLawHurst(t *testing.T) {
	if got := (PowerLaw{Beta: 0.2}).Hurst(); got != 0.9 {
		t.Errorf("Hurst = %v, want 0.9", got)
	}
}

func TestFGNKnownProperties(t *testing.T) {
	// H=0.5 is white noise.
	f := FGN{H: 0.5}
	for k := 1; k < 10; k++ {
		if got := f.At(k); math.Abs(got) > 1e-12 {
			t.Errorf("FGN(0.5).At(%d) = %v, want 0", k, got)
		}
	}
	// H>0.5: positive correlations decaying as H(2H-1)k^{2H-2} asymptotically.
	g := FGN{H: 0.9}
	prev := 1.0
	for k := 1; k < 1000; k++ {
		v := g.At(k)
		if v <= 0 || v >= prev {
			t.Fatalf("FGN(0.9) not positive decreasing at lag %d: %v (prev %v)", k, v, prev)
		}
		prev = v
	}
	// Asymptotic slope check at large k.
	k := 1000.0
	asym := 0.9 * (2*0.9 - 1) * math.Pow(k, 2*0.9-2)
	if math.Abs(g.At(1000)-asym)/asym > 0.01 {
		t.Errorf("FGN asymptote: got %v, want ~%v", g.At(1000), asym)
	}
	// H<0.5: negative correlation at lag 1.
	h := FGN{H: 0.3}
	if h.At(1) >= 0 {
		t.Errorf("FGN(0.3).At(1) = %v, want negative", h.At(1))
	}
}

func TestPaperCompositeMatchesEq13(t *testing.T) {
	c := PaperComposite()
	// Below knee: exp(-0.00565093 k).
	if got, want := c.At(30), math.Exp(-0.00565093*30); math.Abs(got-want) > 1e-12 {
		t.Errorf("At(30) = %v, want %v", got, want)
	}
	// At and beyond knee: 1.59468 k^-0.2.
	if got, want := c.At(60), 1.59468*math.Pow(60, -0.2); math.Abs(got-want) > 1e-12 {
		t.Errorf("At(60) = %v, want %v", got, want)
	}
	if got, want := c.At(500), 1.59468*math.Pow(500, -0.2); math.Abs(got-want) > 1e-12 {
		t.Errorf("At(500) = %v, want %v", got, want)
	}
	// Near-continuity at the knee (the paper's fit has a small gap).
	if gap := c.ContinuityGap(); gap > 0.01 {
		t.Errorf("continuity gap = %v, want < 0.01", gap)
	}
	if c.Hurst() != 0.9 {
		t.Errorf("Hurst = %v, want 0.9", c.Hurst())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("paper composite invalid: %v", err)
	}
}

func TestCompositeValidate(t *testing.T) {
	bad := []Composite{
		{Weights: []float64{1}, Rates: []float64{0.1, 0.2}, L: 1, Beta: 0.2, Knee: 10},
		{Weights: nil, Rates: nil, L: 1, Beta: 0.2, Knee: 10},
		{Weights: []float64{1}, Rates: []float64{-0.1}, L: 1, Beta: 0.2, Knee: 10},
		{Weights: []float64{1}, Rates: []float64{0.1}, L: 1, Beta: 1.2, Knee: 10},
		{Weights: []float64{1}, Rates: []float64{0.1}, L: 0, Beta: 0.2, Knee: 10},
		{Weights: []float64{1}, Rates: []float64{0.1}, L: 1, Beta: 0.2, Knee: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid composite accepted", i)
		}
	}
}

func TestScaledInterpolation(t *testing.T) {
	base := Exponential{Lambda: 0.1}
	s := Scaled{Base: base, Factor: 12}
	// At multiples of the factor it matches the base exactly.
	for _, k := range []int{12, 24, 120} {
		if got, want := s.At(k), base.At(k/12); math.Abs(got-want) > 1e-15 {
			t.Errorf("At(%d) = %v, want %v", k, got, want)
		}
	}
	// Between multiples it interpolates linearly.
	got := s.At(18) // halfway between base(1) and base(2)
	want := (base.At(1) + base.At(2)) / 2
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("At(18) = %v, want %v", got, want)
	}
	// Factor <= 1 degenerates to the base.
	id := Scaled{Base: base, Factor: 1}
	if id.At(7) != base.At(7) {
		t.Error("Factor=1 should be identity")
	}
}

func TestTable(t *testing.T) {
	tab := Table(Exponential{Lambda: 0.5}, 5)
	if len(tab) != 6 || tab[0] != 1 {
		t.Fatalf("Table len=%d first=%v", len(tab), tab[0])
	}
	for k := 1; k <= 5; k++ {
		if tab[k] != math.Exp(-0.5*float64(k)) {
			t.Fatalf("Table[%d] wrong", k)
		}
	}
}

func TestFitCompositeRecoversKnownModel(t *testing.T) {
	truth := Composite{
		Weights: []float64{1},
		Rates:   []float64{0.02},
		L:       1.4,
		Beta:    0.25,
		Knee:    50,
	}
	empirical := Table(truth, 500)
	got, err := FitComposite(empirical, FitOptions{Knee: 50, AllowDiscontinuous: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Rates[0]-0.02) > 1e-6 {
		t.Errorf("rate = %v, want 0.02", got.Rates[0])
	}
	if math.Abs(got.Beta-0.25) > 1e-6 {
		t.Errorf("beta = %v, want 0.25", got.Beta)
	}
	if math.Abs(got.L-1.4) > 1e-4 {
		t.Errorf("L = %v, want 1.4", got.L)
	}

	// The default fit enforces continuity (eq. 12) while preserving the tail.
	cont, err := FitComposite(empirical, FitOptions{Knee: 50})
	if err != nil {
		t.Fatal(err)
	}
	if gap := cont.ContinuityGap(); gap > 1e-9 {
		t.Errorf("default fit continuity gap = %v", gap)
	}
	for _, k := range []int{50, 100, 400} {
		if math.Abs(cont.At(k)-truth.At(k)) > 1e-6 {
			t.Errorf("continuous fit changed the LRD tail at lag %d", k)
		}
	}
}

func TestContinuousMethod(t *testing.T) {
	raw := PaperComposite()
	cont := raw.Continuous()
	if gap := cont.ContinuityGap(); gap > 1e-12 {
		t.Errorf("Continuous() gap = %v", gap)
	}
	// Single-exponential adjustment must preserve the tail exactly.
	for _, k := range []int{60, 200, 500} {
		if cont.At(k) != raw.At(k) {
			t.Errorf("Continuous() changed tail at lag %d", k)
		}
	}
	// Multi-exponential variant adjusts L instead.
	multi := Composite{
		Weights: []float64{0.6, 0.4},
		Rates:   []float64{0.01, 0.1},
		L:       1.59468, Beta: 0.2, Knee: 60,
	}
	mc := multi.Continuous()
	if gap := mc.ContinuityGap(); gap > 1e-12 {
		t.Errorf("multi Continuous() gap = %v", gap)
	}
	for k := 1; k < 60; k++ {
		if mc.At(k) != multi.At(k) {
			t.Errorf("multi Continuous() changed SRD at lag %d", k)
		}
	}
}

func TestFitCompositeAutoKnee(t *testing.T) {
	truth := PaperComposite()
	empirical := Table(truth, 500)
	got, err := FitComposite(empirical, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Knee < 40 || got.Knee > 80 {
		t.Errorf("detected knee = %d, want near 60", got.Knee)
	}
	if math.Abs(got.Beta-0.2) > 0.03 {
		t.Errorf("beta = %v, want ~0.2", got.Beta)
	}
	if math.Abs(got.Rates[0]-0.00565) > 0.002 {
		t.Errorf("rate = %v, want ~0.00565", got.Rates[0])
	}
}

func TestFitCompositeFixedBeta(t *testing.T) {
	truth := PaperComposite()
	empirical := Table(truth, 500)
	got, err := FitComposite(empirical, FitOptions{Knee: 60, Beta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Beta != 0.2 {
		t.Errorf("beta = %v, want exactly 0.2", got.Beta)
	}
	if math.Abs(got.L-1.59468) > 0.02 {
		t.Errorf("L = %v, want ~1.59468", got.L)
	}
}

func TestFitCompositeErrors(t *testing.T) {
	if _, err := FitComposite([]float64{1, 0.9}, FitOptions{}); err == nil {
		t.Error("short ACF accepted")
	}
	empirical := Table(PaperComposite(), 100)
	if _, err := FitComposite(empirical, FitOptions{Knee: 99}); err == nil {
		t.Error("knee at edge accepted")
	}
}

func TestDetectKneeOnSyntheticData(t *testing.T) {
	for _, trueKnee := range []int{30, 60, 90} {
		truth := Composite{
			Weights: []float64{1},
			Rates:   []float64{0.03},
			L:       0, Beta: 0.2, Knee: trueKnee,
		}
		// Anchor L for continuity so the knee is identifiable.
		srdAtKnee := math.Exp(-0.03 * float64(trueKnee))
		truth.L = srdAtKnee * math.Pow(float64(trueKnee), 0.2)
		empirical := Table(truth, 400)
		got, err := DetectKnee(empirical, 10, 150)
		if err != nil {
			t.Fatal(err)
		}
		if got < trueKnee-10 || got > trueKnee+10 {
			t.Errorf("true knee %d: detected %d", trueKnee, got)
		}
	}
}

func TestCompensate(t *testing.T) {
	rhat := PaperComposite()
	a := 0.94
	comp, err := Compensate(rhat, a)
	if err != nil {
		t.Fatal(err)
	}
	// LRD part must be scaled up by 1/a.
	for _, k := range []int{60, 100, 500} {
		want := rhat.At(k) / a
		if got := comp.At(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("compensated At(%d) = %v, want %v", k, got, want)
		}
	}
	// SRD part: eq. 14 pins the value at the knee.
	wantAtKnee := rhat.At(rhat.Knee) / a
	if got := math.Exp(-comp.Rates[0] * float64(rhat.Knee)); math.Abs(got-wantAtKnee) > 1e-12 {
		t.Errorf("eq.14: exp(-lambda Kt) = %v, want %v", got, wantAtKnee)
	}
	// Compensated model is continuous at the knee by construction.
	if gap := comp.ContinuityGap(); gap > 1e-9 {
		t.Errorf("compensated continuity gap = %v", gap)
	}
}

func TestCompensateBadAttenuation(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := Compensate(PaperComposite(), a); err == nil {
			t.Errorf("attenuation %v accepted", a)
		}
	}
}

func TestCompensateIdentityWhenAIsOne(t *testing.T) {
	rhat := PaperComposite()
	comp, err := Compensate(rhat, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{100, 200, 400} {
		if math.Abs(comp.At(k)-rhat.At(k)) > 1e-9 {
			t.Errorf("a=1 should be near-identity in LRD regime at lag %d", k)
		}
	}
}

func TestCompensateSaturation(t *testing.T) {
	// Moderate attenuation pushing the tail up must still yield a valid
	// (convex, positive-definite) model, possibly with a later knee.
	rhat := Composite{Weights: []float64{1}, Rates: []float64{0.01}, L: 1.2, Beta: 0.3, Knee: 30}
	comp, err := Compensate(rhat, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Rates[0] <= 0 {
		t.Errorf("saturated compensation produced rate %v", comp.Rates[0])
	}
	if !comp.ConvexAtKnee() {
		t.Error("compensated model is not convex at the knee")
	}
	// A pathological compensation (tail level 3 with beta 0.2 stays above 1
	// until lag ~243) must fail gracefully instead of producing a bogus
	// correlation function.
	bad := Composite{Weights: []float64{1}, Rates: []float64{0.0001}, L: 1.5, Beta: 0.2, Knee: 10}
	if _, err := Compensate(bad, 0.5); err == nil {
		t.Error("pathological compensation accepted")
	}
}

func TestEnsureConvex(t *testing.T) {
	// A concave corner (lambda < beta/knee) must be repaired.
	c := Composite{Weights: []float64{1}, Rates: []float64{0.004}, L: 1.45, Beta: 0.18, Knee: 10}
	if c.ConvexAtKnee() {
		t.Fatal("test case should start concave")
	}
	fixed, err := c.EnsureConvex()
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.ConvexAtKnee() {
		t.Error("EnsureConvex left a concave knee")
	}
	if gap := fixed.ContinuityGap(); gap > 1e-9 {
		t.Errorf("EnsureConvex broke continuity: gap %v", gap)
	}
	// Tail preserved exactly beyond the new knee.
	for _, k := range []int{fixed.Knee, fixed.Knee + 50, 400} {
		if math.Abs(fixed.At(k)-c.L*math.Pow(float64(k), -c.Beta)) > 1e-12 {
			t.Errorf("tail changed at lag %d", k)
		}
	}
	// An already-convex model passes through unchanged.
	good := PaperComposite().Continuous()
	same, err := good.EnsureConvex()
	if err != nil {
		t.Fatal(err)
	}
	if same.Knee != good.Knee || same.Rates[0] != good.Rates[0] {
		t.Error("EnsureConvex modified a convex model")
	}
}

func TestClamped(t *testing.T) {
	c := Clamped{Base: PowerLaw{L: 5, Beta: 0.1}}
	if got := c.At(1); got >= 1 {
		t.Errorf("clamped At(1) = %v, want < 1", got)
	}
	if got := c.At(0); got != 1 {
		t.Errorf("clamped At(0) = %v, want 1", got)
	}
}

func TestSpectralDensityWhiteIsFlat(t *testing.T) {
	freqs, density, err := SpectralDensity(White{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != len(density) || len(freqs) == 0 {
		t.Fatal("bad lengths")
	}
	for j, v := range density {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("white density[%d] = %v, want 1", j, v)
		}
	}
	if freqs[0] != 0 || math.Abs(freqs[len(freqs)-1]-math.Pi) > 1e-12 {
		t.Errorf("frequency range [%v, %v]", freqs[0], freqs[len(freqs)-1])
	}
}

func TestSpectralDensityAR1ClosedForm(t *testing.T) {
	// For r(k) = phi^|k| the spectral density is
	// (1 - phi^2) / (1 - 2 phi cos w + phi^2); truncation error is
	// O(phi^n), negligible here.
	phi := 0.6
	m := Exponential{Lambda: -math.Log(phi)}
	freqs, density, err := SpectralDensity(m, 256)
	if err != nil {
		t.Fatal(err)
	}
	for j := range freqs {
		w := freqs[j]
		want := (1 - phi*phi) / (1 - 2*phi*math.Cos(w) + phi*phi)
		if math.Abs(density[j]-want) > 1e-6 {
			t.Fatalf("density(%v) = %v, want %v", w, density[j], want)
		}
	}
}

func TestMinEigenvalueDiagnosesPD(t *testing.T) {
	// Continuous convex composite: non-negative spectrum.
	good := PaperComposite().Continuous()
	min, err := MinEigenvalue(good, 512)
	if err != nil {
		t.Fatal(err)
	}
	if min < -1e-6 {
		t.Errorf("continuous composite min eigenvalue %v", min)
	}
	// The raw paper fit (with its knee jump) goes measurably negative.
	bad, err := MinEigenvalue(PaperComposite(), 512)
	if err != nil {
		t.Fatal(err)
	}
	if bad >= min {
		t.Errorf("raw fit eigenvalue %v not worse than continuous %v", bad, min)
	}
	if _, _, err := SpectralDensity(White{}, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestQuickCompositeBounded(t *testing.T) {
	// Any validated composite stays in (0, 1] over a wide lag range.
	f := func(rateRaw, betaRaw float64, kneeRaw uint8) bool {
		rate := 0.001 + math.Mod(math.Abs(rateRaw), 0.5)
		beta := 0.05 + math.Mod(math.Abs(betaRaw), 0.9)
		knee := 2 + int(kneeRaw)%200
		srdAtKnee := math.Exp(-rate * float64(knee))
		c := Composite{
			Weights: []float64{1},
			Rates:   []float64{rate},
			L:       srdAtKnee * math.Pow(float64(knee), beta),
			Beta:    beta,
			Knee:    knee,
		}
		if c.Validate() != nil {
			return true // skip invalid parameter draws
		}
		for k := 0; k < 1000; k++ {
			v := c.At(k)
			if v <= 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickContinuousConvexCompositesAreValid(t *testing.T) {
	// Property: for any parameter draw, Continuous() + EnsureConvex()
	// yields a composite that is positive, decreasing and convex at every
	// lag — the preconditions under which Pólya's criterion guarantees it
	// is a valid correlation function. (Positive definiteness itself is
	// exercised end-to-end in the hosking package tests.)
	f := func(rateRaw, betaRaw, lRaw float64, kneeRaw uint8) bool {
		rate := 0.002 + math.Mod(math.Abs(rateRaw), 0.5)
		beta := 0.05 + math.Mod(math.Abs(betaRaw), 0.85)
		l := 0.3 + math.Mod(math.Abs(lRaw), 1.2)
		knee := 5 + int(kneeRaw)%150
		c := Composite{
			Weights: []float64{1},
			Rates:   []float64{rate},
			L:       l,
			Beta:    beta,
			Knee:    knee,
		}
		c = c.Continuous()
		c, err := c.EnsureConvex()
		if err != nil {
			return true // rejected as inconsistent — acceptable outcome
		}
		if c.Validate() != nil || !c.ConvexAtKnee() {
			return false
		}
		prev := 1.0
		prevDiff := 0.0
		for k := 1; k < 600; k++ {
			v := c.At(k)
			if v <= 0 || v > prev+1e-12 {
				return false
			}
			diff := v - prev
			// Discrete convexity: differences are non-decreasing, allowing
			// a small numeric slack at the spliced knee.
			if k > 1 && diff < prevDiff-1e-9 {
				return false
			}
			prev, prevDiff = v, diff
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompositeAt(b *testing.B) {
	c := PaperComposite()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += c.At(i % 1000)
	}
	_ = sink
}

func BenchmarkFitComposite(b *testing.B) {
	empirical := Table(PaperComposite(), 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitComposite(empirical, FitOptions{Knee: 60}); err != nil {
			b.Fatal(err)
		}
	}
}
