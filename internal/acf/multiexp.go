// Multi-exponential SRD fitting. The paper's eq. (10) allows the
// short-range part of the composite ACF to be a weighted sum of j
// exponentials with sum(w_i) = 1 (eq. 11); the paper itself uses j = 1 and
// leaves richer SRD structure open. This file fits j = 2 by separable least
// squares: for any rate pair the optimal convex weight has a closed form,
// so the search reduces to a two-dimensional grid over rates followed by
// local refinement.
package acf

import (
	"errors"
	"math"
)

// FitSRDExponentials fits sum_i w_i exp(-lambda_i k) with w_i >= 0 and
// sum w_i = 1 to the lags [1, knee) of an empirical ACF (lag 0 = 1 pins the
// weight constraint). nComp must be 1 or 2. It returns parallel weight and
// rate slices, rates ascending.
func FitSRDExponentials(empirical []float64, knee, nComp int) (weights, rates []float64, err error) {
	if knee < 3 || knee > len(empirical) {
		return nil, nil, errors.New("acf: SRD fit needs knee in [3, len(acf)]")
	}
	switch nComp {
	case 1:
		e, err := fitExponential(empirical, 1, knee)
		if err != nil {
			return nil, nil, err
		}
		return []float64{1}, []float64{e.Lambda}, nil
	case 2:
		return fitTwoExponentials(empirical, knee)
	default:
		return nil, nil, errors.New("acf: SRD fit supports 1 or 2 components")
	}
}

// fitTwoExponentials performs the grid + refinement search.
func fitTwoExponentials(empirical []float64, knee int) (weights, rates []float64, err error) {
	ks := make([]float64, 0, knee-1)
	rs := make([]float64, 0, knee-1)
	for k := 1; k < knee; k++ {
		ks = append(ks, float64(k))
		rs = append(rs, empirical[k])
	}
	if len(ks) < 3 {
		return nil, nil, errors.New("acf: too few SRD lags for a two-exponential fit")
	}

	// sse evaluates the best achievable error for a rate pair, with the
	// optimal clamped weight.
	sse := func(l1, l2 float64) (float64, float64) {
		var num, den float64
		for i, k := range ks {
			a := math.Exp(-l1 * k)
			b := math.Exp(-l2 * k)
			num += (rs[i] - b) * (a - b)
			den += (a - b) * (a - b)
		}
		w := 0.5
		if den > 0 {
			w = num / den
		}
		if w < 0 {
			w = 0
		}
		if w > 1 {
			w = 1
		}
		var s float64
		for i, k := range ks {
			model := w*math.Exp(-l1*k) + (1-w)*math.Exp(-l2*k)
			d := rs[i] - model
			s += d * d
		}
		return s, w
	}

	// Log-spaced rate grid spanning decay times from ~1 lag to ~10x the
	// knee.
	const gridN = 24
	lo := 0.01 / float64(knee)
	hi := 2.0
	grid := make([]float64, gridN)
	for i := range grid {
		grid[i] = lo * math.Pow(hi/lo, float64(i)/float64(gridN-1))
	}
	bestErr := math.Inf(1)
	var bestL1, bestL2, bestW float64
	for i, l1 := range grid {
		for _, l2 := range grid[i:] {
			e, w := sse(l1, l2)
			if e < bestErr {
				bestErr, bestL1, bestL2, bestW = e, l1, l2, w
			}
		}
	}
	if math.IsInf(bestErr, 1) {
		return nil, nil, errors.New("acf: two-exponential grid search failed")
	}

	// Local refinement: shrink a multiplicative neighborhood around the
	// best pair.
	span := math.Sqrt(hi / lo)
	for iter := 0; iter < 12; iter++ {
		span = math.Sqrt(span)
		improved := false
		for _, f1 := range []float64{1 / span, 1, span} {
			for _, f2 := range []float64{1 / span, 1, span} {
				l1 := bestL1 * f1
				l2 := bestL2 * f2
				if l1 <= 0 || l2 <= 0 {
					continue
				}
				e, w := sse(l1, l2)
				if e < bestErr {
					bestErr, bestL1, bestL2, bestW = e, l1, l2, w
					improved = true
				}
			}
		}
		if !improved && span < 1.001 {
			break
		}
	}
	if bestL1 > bestL2 {
		bestL1, bestL2 = bestL2, bestL1
		bestW = 1 - bestW
	}
	// Degenerate second component: collapse to one exponential.
	if bestW >= 1-1e-9 || bestL1 == bestL2 {
		return []float64{1}, []float64{bestL1}, nil
	}
	if bestW <= 1e-9 {
		return []float64{1}, []float64{bestL2}, nil
	}
	return []float64{bestW, 1 - bestW}, []float64{bestL1, bestL2}, nil
}

// FitCompositeMulti fits the composite knee model with a two-exponential
// SRD part (eqs. 10-12 with j = 2): the knee and LRD tail are fitted as in
// FitComposite, then the SRD region is refitted with two exponentials and
// the splice is made continuous (re-anchoring L) and convex.
func FitCompositeMulti(empirical []float64, opt FitOptions) (Composite, error) {
	base, err := FitComposite(empirical, opt)
	if err != nil {
		return Composite{}, err
	}
	w, r, err := FitSRDExponentials(empirical, base.Knee, 2)
	if err != nil {
		return Composite{}, err
	}
	if len(w) == 1 {
		return base, nil // two-exponential fit collapsed; keep the base
	}
	c := Composite{
		Weights: w,
		Rates:   r,
		L:       base.L,
		Beta:    base.Beta,
		Knee:    base.Knee,
	}
	if !opt.AllowDiscontinuous {
		c = c.Continuous()
		c, err = c.EnsureConvex()
		if err != nil {
			return Composite{}, err
		}
	}
	if err := c.Validate(); err != nil {
		return Composite{}, err
	}
	// Keep the richer SRD only if it actually fits the head better.
	if srdSSE(empirical, c) <= srdSSE(empirical, base) {
		return c, nil
	}
	return base, nil
}

// srdSSE sums squared head-region errors of a composite against an
// empirical ACF.
func srdSSE(empirical []float64, c Composite) float64 {
	var s float64
	for k := 1; k < c.Knee && k < len(empirical); k++ {
		d := empirical[k] - c.At(k)
		s += d * d
	}
	return s
}
