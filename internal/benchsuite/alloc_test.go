package benchsuite

import (
	"testing"

	"vbrsim/internal/daviesharte"
	"vbrsim/internal/rng"
)

// TestDHSteadyStateZeroAlloc is the alloc gate behind the DHPathInto,
// DHPathRealInto, and DHBatch bench entries: after one warm call grows the
// scratch arena, the steady-state synthesis loops must not allocate at
// all. The benchmarks warm before ResetTimer for the same reason, so their
// allocs_per_op columns report the steady state this test enforces.
func TestDHSteadyStateZeroAlloc(t *testing.T) {
	plan, err := daviesharte.NewPlan(benchModel, dhLen, daviesharte.Options{AllowApprox: true})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("PathInto", func(t *testing.T) {
		r := rng.New(1)
		var s daviesharte.Scratch
		out := make([]float64, dhLen)
		plan.PathInto(out, &s, r)
		if allocs := testing.AllocsPerRun(10, func() {
			plan.PathInto(out, &s, r)
		}); allocs != 0 {
			t.Fatalf("PathInto steady state allocates %v/op, want 0", allocs)
		}
	})

	t.Run("PathRealInto", func(t *testing.T) {
		r := rng.New(1)
		var s daviesharte.Scratch
		out := make([]float64, dhLen)
		plan.PathRealInto(out, &s, r)
		if allocs := testing.AllocsPerRun(10, func() {
			plan.PathRealInto(out, &s, r)
		}); allocs != 0 {
			t.Fatalf("PathRealInto steady state allocates %v/op, want 0", allocs)
		}
	})

	t.Run("Batch", func(t *testing.T) {
		dst := make([][]float64, dhBatchSz)
		seeds := make([]uint64, dhBatchSz)
		for i := range dst {
			dst[i] = make([]float64, dhLen)
			seeds[i] = uint64(i + 1)
		}
		scratch := []*daviesharte.Scratch{new(daviesharte.Scratch)}
		if err := plan.Batch(dst, seeds, scratch); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			if err := plan.Batch(dst, seeds, scratch); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Fatalf("Batch steady state (single worker) allocates %v/op, want 0", allocs)
		}
	})
}
