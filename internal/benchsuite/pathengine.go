package benchsuite

import (
	"sync"
	"testing"

	"vbrsim/internal/daviesharte"
	"vbrsim/internal/dist"
	"vbrsim/internal/fft"
	"vbrsim/internal/rng"
	"vbrsim/internal/transform"
)

// Path-engine ablations: the Davies-Harte batched zero-alloc engine
// (PathReference -> PathInto -> PathRealInto/Batch), the FFT twiddle-table
// cache, the packed real-input FFT, and the table-based marginal transform.

const (
	dhLen     = 4096 // Davies-Harte path length (circulant size 8192)
	fftLen    = 8192 // complex/real FFT ablation size, matching dhLen's m
	applyLen  = 4096 // transform ApplyTo batch size
	dhBatchSz = 8    // paths per Batch op
)

var (
	dhOnce sync.Once
	dhPlan *daviesharte.Plan
	dhErr  error

	lutOnce      sync.Once
	lutTransform transform.T
	lutTable     *transform.LUT
	lutErr       error
)

func getDHPlan(b *testing.B) *daviesharte.Plan {
	dhOnce.Do(func() { dhPlan, dhErr = daviesharte.NewPlan(benchModel, dhLen, daviesharte.Options{AllowApprox: true}) })
	if dhErr != nil {
		b.Fatal(dhErr)
	}
	return dhPlan
}

func getLUT(b *testing.B) (transform.T, *transform.LUT) {
	lutOnce.Do(func() {
		lutTransform = transform.New(dist.Lognormal{Mu: 9.6, Sigma: 0.4})
		lutTable, lutErr = lutTransform.NewDefaultLUT()
	})
	if lutErr != nil {
		b.Fatal(lutErr)
	}
	return lutTransform, lutTable
}

// BenchDHPathReference is the seed Davies-Harte implementation: per-call
// spectrum and output allocations, on-the-fly-twiddle reference FFT.
func BenchDHPathReference(b *testing.B) {
	plan := getDHPlan(b)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.PathReference(r)
	}
}

// BenchDHPathInto is the zero-alloc bit-identical path: reused scratch,
// cached-twiddle full-length complex FFT.
func BenchDHPathInto(b *testing.B) {
	plan := getDHPlan(b)
	r := rng.New(1)
	var s daviesharte.Scratch
	out := make([]float64, dhLen)
	plan.PathInto(out, &s, r) // warm: scratch grows once, then 0 B/op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.PathInto(out, &s, r)
	}
}

// BenchDHPathRealInto synthesizes through the packed half-spectrum FFT
// (one complex transform of length m/2 instead of m).
func BenchDHPathRealInto(b *testing.B) {
	plan := getDHPlan(b)
	r := rng.New(1)
	var s daviesharte.Scratch
	out := make([]float64, dhLen)
	plan.PathRealInto(out, &s, r) // warm: scratch grows once, then 0 B/op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.PathRealInto(out, &s, r)
	}
}

// BenchDHBatch generates dhBatchSz seeded paths per op through the batch
// engine with one reused scratch arena (the zero-alloc inline layout).
func BenchDHBatch(b *testing.B) {
	plan := getDHPlan(b)
	dst := make([][]float64, dhBatchSz)
	seeds := make([]uint64, dhBatchSz)
	for i := range dst {
		dst[i] = make([]float64, dhLen)
		seeds[i] = uint64(i + 1)
	}
	scratch := []*daviesharte.Scratch{new(daviesharte.Scratch)}
	if err := plan.Batch(dst, seeds, scratch); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Batch(dst, seeds, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchFFTForwardReference runs the complex forward FFT with twiddles
// recomputed on the fly (the pre-table baseline).
func BenchFFTForwardReference(b *testing.B) {
	x := benchSpectrum(fftLen)
	buf := make([]complex128, fftLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := fft.ForwardReference(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchFFTForwardTabled runs the same transform through the per-size cached
// twiddle and bit-reversal tables (bit-identical output).
func BenchFFTForwardTabled(b *testing.B) {
	x := benchSpectrum(fftLen)
	buf := make([]complex128, fftLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := fft.Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchFFTRealForward computes the half-spectrum of a real input by packing
// it into one complex FFT of half the length.
func BenchFFTRealForward(b *testing.B) {
	x := make([]float64, fftLen)
	r := rng.New(3)
	for i := range x {
		x[i] = r.Norm()
	}
	a := make([]complex128, fftLen/2+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fft.RealForward(a, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchFFTHermitianReal runs the fused inverse half-spectrum kernel (the
// Davies-Harte synthesis back end): Hermitian scatter + radix-2² inverse
// stages + unpack in one pass, with cache-blocked tiles above stageTile.
func BenchFFTHermitianReal(b *testing.B) {
	h := fftLen / 2
	a := benchSpectrum(h + 1)
	// The kernel requires a genuinely Hermitian-representable input:
	// real DC and Nyquist bins.
	a[0] = complex(real(a[0]), 0)
	a[h] = complex(real(a[h]), 0)
	out := make([]float64, fftLen)
	z := make([]complex128, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fft.HermitianReal(out, a, z); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchTransformApplyExact maps a background path to the foreground through
// the exact CDF/quantile composition.
func BenchTransformApplyExact(b *testing.B) {
	tr, _ := getLUT(b)
	xs, dst := benchNormals(applyLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ApplyTo(dst, xs)
	}
}

// BenchTransformApplyLUT maps the same path through the precomputed
// monotone interpolation table (error within LUT.MaxError).
func BenchTransformApplyLUT(b *testing.B) {
	_, lut := getLUT(b)
	xs, dst := benchNormals(applyLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lut.ApplyTo(dst, xs)
	}
}

func benchSpectrum(n int) []complex128 {
	r := rng.New(2)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Norm(), r.Norm())
	}
	return x
}

func benchNormals(n int) (xs, dst []float64) {
	r := rng.New(4)
	xs = make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
	}
	return xs, make([]float64, n)
}
