package benchsuite

import (
	"context"
	"sync"
	"testing"

	"vbrsim/internal/core"
	"vbrsim/internal/daviesharte"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/obs"
	"vbrsim/internal/par"
	"vbrsim/internal/queue"
	"vbrsim/internal/transform"
)

// Observability ablations: the cost of the obs registry's hot instruments,
// of a stage span, and — the numbers the <2% overhead gate reads — full
// estimator and DH-batch runs with telemetry off vs on. The Off/On pairs
// keep everything but the instrumentation identical, so their ratio is the
// observability tax on the real hot paths.

const (
	obsMCLen  = 1024 // queue horizon for the telemetry ablation
	obsMCReps = 128  // replications per op
)

var (
	obsOnce sync.Once
	obsSrc  core.ArrivalSource
	obsSvc  float64
	obsBuf  float64
	obsErr  error
)

// getObsSource builds the telemetry-ablation fixture: a truncated-AR
// arrival source over the bench model (the same configuration qsim -fast
// runs), sized so one op is a complete small estimation run.
func getObsSource(b *testing.B) (core.ArrivalSource, float64, float64) {
	obsOnce.Do(func() {
		var plan *hosking.Plan
		plan, obsErr = hosking.NewPlan(benchModel, obsMCLen)
		if obsErr != nil {
			return
		}
		var trunc *hosking.Truncated
		trunc, obsErr = plan.Truncate(hosking.TruncateOptions{ACFTol: fastACFTol})
		if obsErr != nil {
			return
		}
		tr := transform.New(dist.Lognormal{Mu: 9.6, Sigma: 0.4})
		obsSrc = core.ArrivalSource{Plan: plan, Fast: trunc, Transform: tr}
		mean := tr.Target.Mean()
		obsSvc = mean / 0.9
		obsBuf = 30 * mean
	})
	if obsErr != nil {
		b.Fatal(obsErr)
	}
	return obsSrc, obsSvc, obsBuf
}

// BenchRegistryCounterAdd measures the registry's hottest instrument: a
// lock-free CAS float counter add, the cost paid per streamed chunk and
// per observed worker-pool run.
func BenchRegistryCounterAdd(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_counter_total", "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchSpanStartEndOff measures a span on the nil tracer — the price every
// instrumented call site pays when tracing is not requested.
func BenchSpanStartEndOff(b *testing.B) {
	var tr *obs.Tracer
	for i := 0; i < b.N; i++ {
		span := tr.Start("bench")
		span.End(nil)
	}
}

// BenchSpanStartEndOn measures a live collect-only span, dominated by the
// two runtime.ReadMemStats calls that capture allocation deltas. Spans are
// per pipeline *stage* (a handful per run), so even microseconds here are
// far below the overhead gate.
func BenchSpanStartEndOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := obs.NewTracer(nil)
		span := tr.Start("bench")
		span.End(nil)
	}
}

// BenchQueueMCTelemetryOff runs a complete small MC estimation with no
// telemetry: the baseline for the overhead gate.
func BenchQueueMCTelemetryOff(b *testing.B) {
	src, svc, buf := getObsSource(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queue.EstimateOverflow(src, svc, buf, obsMCLen,
			queue.MCOptions{Replications: obsMCReps, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchQueueMCTelemetryOn runs the identical estimation with every
// telemetry hook live: a traced context (queue.mc span), a convergence
// meter snapshotting every 16 replications, and a worker-pool observer.
func BenchQueueMCTelemetryOn(b *testing.B) {
	src, svc, buf := getObsSource(b)
	par.SetObserver(func(par.RunStats) {})
	defer par.SetObserver(nil)
	sink := func(obs.Convergence) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := obs.ContextWithTracer(context.Background(), obs.NewTracer(nil))
		if _, err := queue.EstimateOverflowCtx(ctx, src, svc, buf, obsMCLen,
			queue.MCOptions{Replications: obsMCReps, Seed: uint64(i + 1),
				Progress: sink, ProgressEvery: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchDHPathTelemetryOff generates a Davies-Harte batch with the par
// observer uninstalled (the zero-alloc inline fan-out path).
func BenchDHPathTelemetryOff(b *testing.B) {
	benchDHBatchObserved(b)
}

// BenchDHPathTelemetryOn generates the identical batch with a worker-pool
// observer installed, forcing the instrumented fan-out (per-worker busy
// clocks, in-flight peak tracking). Output stays bit-identical; only the
// bookkeeping differs.
func BenchDHPathTelemetryOn(b *testing.B) {
	par.SetObserver(func(par.RunStats) {})
	defer par.SetObserver(nil)
	benchDHBatchObserved(b)
}

func benchDHBatchObserved(b *testing.B) {
	plan := getDHPlan(b)
	dst := make([][]float64, dhBatchSz)
	seeds := make([]uint64, dhBatchSz)
	for i := range dst {
		dst[i] = make([]float64, dhLen)
		seeds[i] = uint64(i + 1)
	}
	scratch := []*daviesharte.Scratch{new(daviesharte.Scratch)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.Batch(dst, seeds, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
