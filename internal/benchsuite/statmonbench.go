package benchsuite

import (
	"context"
	"sync"
	"testing"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/statmon"
)

// The statmon ablation pair measures the serve-path tax of the live
// statistical monitor: both variants stream the paper spec through the
// block engine in trafficd-sized chunks, and the On variant additionally
// feeds every chunk through a statmon.Monitor at the server's default
// sampling rate with the full analytic reference attached (implied ACF,
// target Hurst, marginal quantiles) — exactly what handleStreamFrames
// does per chunk. The Off/On ratio is the acceptance bound in ISSUE 10:
// statmon-on serving must stay within a few percent of statmon-off.

const (
	statmonFillLen = 16384 // frames per op, matching StreamBlockFill/n=16384
	statmonChunk   = 1024  // trafficd serve-path chunk size (server.streamChunk)
	statmonSample  = 32    // trafficd default Options.StatmonSampleEvery
)

type statmonFixture struct {
	off *modelspec.Stream
	on  *modelspec.Stream
	mon *statmon.Monitor
	pos int64 // absolute stream position of the On variant's tap
}

var (
	statmonOnce sync.Once
	statmonFix  statmonFixture
	statmonErr  error
)

func getStatmonFixture(b *testing.B) *statmonFixture {
	statmonOnce.Do(func() {
		ctx := context.Background()
		spec := modelspec.Paper()
		spec.Seed = 2
		spec.Engine = modelspec.EngineBlock
		if statmonFix.off, statmonErr = spec.OpenCtx(ctx, 0); statmonErr != nil {
			return
		}
		if statmonFix.on, statmonErr = spec.OpenCtx(ctx, 0); statmonErr != nil {
			return
		}
		ref := statmon.Ref{
			H:          spec.TargetHurst(),
			AsymH:      spec.ACF.AsymptoticHurst(),
			ImpliedACF: statmonFix.on.ImpliedACF(statmonChunk + 1),
			Mean:       statmonFix.on.MeanRate(),
		}
		if marg := statmonFix.on.Marginal(); marg != nil {
			ref.Quantile = marg.Quantile
		}
		statmonFix.mon = statmon.New(
			statmon.Config{SampleEvery: statmonSample, MaxScale: statmonChunk}, ref)
	})
	if statmonErr != nil {
		b.Fatal(statmonErr)
	}
	return &statmonFix
}

// BenchStreamBlockFillStatmonOff is the untapped baseline: 16384 paper
// frames per op through the block engine in 1024-frame serve chunks.
func BenchStreamBlockFillStatmonOff(b *testing.B) {
	f := getStatmonFixture(b)
	out := make([]float64, statmonChunk)
	for c := 0; c < statmonFillLen/statmonChunk; c++ {
		f.off.Fill(out) // warm arenas and FFT tables before the timer
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < statmonFillLen/statmonChunk; c++ {
			f.off.Fill(out)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(statmonFillLen), "ns/frame")
}

// BenchStreamBlockFillStatmonOn is the identical fill with the serve-path
// monitor tap: every chunk is offered to Observe, which samples one in
// statmonSample chunks into the online Hurst/ACF/quantile state. The
// allocs_per_op column doubles as the zero-alloc gate on the tap.
func BenchStreamBlockFillStatmonOn(b *testing.B) {
	f := getStatmonFixture(b)
	out := make([]float64, statmonChunk)
	for c := 0; c < statmonFillLen/statmonChunk; c++ {
		f.on.Fill(out)
		f.mon.Observe(f.pos, out)
		f.pos += statmonChunk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < statmonFillLen/statmonChunk; c++ {
			f.on.Fill(out)
			f.mon.Observe(f.pos, out)
			f.pos += statmonChunk
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(statmonFillLen), "ns/frame")
}
