package benchsuite

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"vbrsim/internal/daviesharte"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/par"
	"vbrsim/internal/rng"
	"vbrsim/internal/streamblock"
	"vbrsim/internal/transform"
)

// The streaming path ladder compares the three ways of producing n serving
// frames of the paper spec: the truncated-AR(p) stream (the historical
// serving path: O(p) recursion + exact transform), the overlapped-block
// Davies-Harte stream (exact-FFT blocks + stitch + LUT transform), and the
// one-shot exact batch (a dedicated n-length circulant + LUT) as the lower
// bound a streaming engine is chasing. All three run the paper model
// end-to-end to foreground frames, so the ratios are serving-path ratios,
// not kernel ratios.

// ladderSizes are the ladder's n-equivalents.
var ladderSizes = []int{4096, 16384, 65536}

type ladderFixture struct {
	truncStream *modelspec.Stream
	blockStream *modelspec.Stream
	stepStreams []*modelspec.Stream
	batchPlans  map[int]*daviesharte.Plan
	lut         *transform.LUT
}

var (
	ladderOnce sync.Once
	ladder     ladderFixture
	ladderErr  error
)

// stepSessions is the batched-stepping fan-out width: the trafficd session
// layer steps sessions in groups of this size per cache-warm pass.
const stepSessions = 32

func getLadder(b *testing.B) *ladderFixture {
	ladderOnce.Do(func() {
		ctx := context.Background()
		spec := modelspec.Paper()
		spec.Seed = 1
		if ladder.truncStream, ladderErr = spec.OpenCtx(ctx, 0); ladderErr != nil {
			return
		}
		spec.Engine = modelspec.EngineBlock
		if ladder.blockStream, ladderErr = spec.OpenCtx(ctx, 0); ladderErr != nil {
			return
		}
		for i := 0; i < stepSessions; i++ {
			s := spec
			s.Seed = uint64(100 + i)
			st, err := s.OpenCtx(ctx, 0)
			if err != nil {
				ladderErr = err
				return
			}
			ladder.stepStreams = append(ladder.stepStreams, st)
		}
		model, tr, err := spec.Source()
		if err != nil {
			ladderErr = err
			return
		}
		if ladder.lut, ladderErr = tr.NewDefaultLUT(); ladderErr != nil {
			return
		}
		ladder.batchPlans = make(map[int]*daviesharte.Plan, len(ladderSizes))
		for _, n := range ladderSizes {
			plan, err := daviesharte.NewPlan(model, n, daviesharte.Options{AllowApprox: true})
			if err != nil {
				ladderErr = err
				return
			}
			ladder.batchPlans[n] = plan
		}
	})
	if ladderErr != nil {
		b.Fatal(ladderErr)
	}
	return &ladder
}

func benchStreamFill(b *testing.B, st *modelspec.Stream, n int) {
	out := make([]float64, n)
	st.Fill(out) // warm arenas and FFT tables before the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Fill(out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/frame")
}

// BenchStreamTruncatedFill4096 streams 4096 paper frames through the
// truncated-AR serving path.
func BenchStreamTruncatedFill4096(b *testing.B) { benchStreamFill(b, getLadder(b).truncStream, 4096) }

// BenchStreamTruncatedFill16384 is the n=16k rung — the ladder's headline
// comparison point.
func BenchStreamTruncatedFill16384(b *testing.B) { benchStreamFill(b, getLadder(b).truncStream, 16384) }

// BenchStreamTruncatedFill65536 is the n=64k rung.
func BenchStreamTruncatedFill65536(b *testing.B) { benchStreamFill(b, getLadder(b).truncStream, 65536) }

// BenchStreamBlockFill4096 streams 4096 paper frames through the
// overlapped-block engine.
func BenchStreamBlockFill4096(b *testing.B) { benchStreamFill(b, getLadder(b).blockStream, 4096) }

// BenchStreamBlockFill16384 is the block engine at the headline rung.
func BenchStreamBlockFill16384(b *testing.B) { benchStreamFill(b, getLadder(b).blockStream, 16384) }

// BenchStreamBlockFill65536 is the block engine at the n=64k rung.
func BenchStreamBlockFill65536(b *testing.B) { benchStreamFill(b, getLadder(b).blockStream, 65536) }

func benchBatchExact(b *testing.B, n int) {
	f := getLadder(b)
	plan := f.batchPlans[n]
	var s daviesharte.Scratch
	src := rng.New(1)
	out := make([]float64, n)
	plan.PathRealInto(out, &s, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.PathRealInto(out, &s, src)
		f.lut.ApplyTo(out, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/frame")
}

// BenchBatchExactFill4096 is the one-shot exact batch at n=4096: the
// dedicated-circulant lower bound for the ladder.
func BenchBatchExactFill4096(b *testing.B) { benchBatchExact(b, 4096) }

// BenchBatchExactFill16384 is the exact batch at n=16k.
func BenchBatchExactFill16384(b *testing.B) { benchBatchExact(b, 16384) }

// BenchBatchExactFill65536 is the exact batch at n=64k.
func BenchBatchExactFill65536(b *testing.B) { benchBatchExact(b, 65536) }

// BenchStreamBlockRefill measures one steady-state block refill (raw
// Davies-Harte path + stitch + LUT) by filling exactly one block per op.
// The allocs_per_op column is the AllocsPerRun=0 gate in BENCH_4.json.
func BenchStreamBlockRefill(b *testing.B) {
	f := getLadder(b)
	blockLen := streamblock.DefaultTotal - f.blockStream.Order()
	out := make([]float64, blockLen)
	f.blockStream.Fill(out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.blockStream.Fill(out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(blockLen), "ns/frame")
}

// BenchStreamStepMany steps 32 block-engine sessions by 1024 frames each
// through the par pool — the trafficd batched-stepping shape — so the
// aggregate frames/sec/core scaling with GOMAXPROCS is on the record. The
// step closure is hoisted out of the timed loop so the only per-op
// allocations are the fan-out's own goroutine overhead.
func BenchStreamStepMany(b *testing.B) {
	f := getLadder(b)
	const frames = 1024
	workers := par.Workers(runtime.GOMAXPROCS(0), len(f.stepStreams))
	bufs := make([][]float64, len(f.stepStreams))
	for i := range bufs {
		bufs[i] = make([]float64, frames)
		f.stepStreams[i].Fill(bufs[i])
	}
	step := func(_, j int) {
		f.stepStreams[j].Fill(bufs[j])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.For(workers, len(f.stepStreams), step)
	}
	total := float64(len(f.stepStreams) * frames)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/total, "ns/frame")
}

// BenchStreamStepAffinity is the same 32-session step through the
// sticky-chunk fan-out trafficd now uses for /v1/streams/step: each worker
// walks one contiguous run of sessions, and the worker→range mapping is
// stable across rounds, so every session's synthesis arena stays in one
// worker's cache. Read against StreamStepMany as the striped-vs-sticky
// fan-out ratio (output is bit-identical; sessions own their randomness).
func BenchStreamStepAffinity(b *testing.B) {
	f := getLadder(b)
	const frames = 1024
	workers := par.Workers(runtime.GOMAXPROCS(0), len(f.stepStreams))
	bufs := make([][]float64, len(f.stepStreams))
	for i := range bufs {
		bufs[i] = make([]float64, frames)
		f.stepStreams[i].Fill(bufs[i])
	}
	step := func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			f.stepStreams[j].Fill(bufs[j])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.ForChunks(workers, len(f.stepStreams), step)
	}
	total := float64(len(f.stepStreams) * frames)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/total, "ns/frame")
}
