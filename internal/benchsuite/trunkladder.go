package benchsuite

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/trunk"
)

// The trunk fan-out ladder measures superposition throughput as the source
// count scales: N paper-model streams on the truncated fast engine (the
// cheapest per-source state, so N=1024 stays in cache-friendly memory)
// summed into one aggregate. The headline number is frames/sec/core of
// aggregate output — each aggregate frame costs N component frames plus the
// reduction — and the serial rung doubles as the zero-steady-state-alloc
// gate recorded in the committed BENCH report (BENCH_7.json).

// trunkLadderSources are the ladder's source counts.
var trunkLadderSources = []int{4, 64, 1024}

// trunkFillFrames is the aggregate frames produced per op (spans several
// trunkChunk fan-out rounds).
const trunkFillFrames = 4096

type trunkFixture struct {
	trunks map[int]*trunk.Trunk // parallel fan-out, keyed by source count
	serial *trunk.Trunk         // Workers=1, the alloc-gate rung
}

var (
	trunkOnce sync.Once
	trunkFix  trunkFixture
	trunkErr  error
)

func trunkLadderSpec(n int, seed uint64) *modelspec.TrunkSpec {
	paper := modelspec.Paper()
	return &modelspec.TrunkSpec{
		Seed: seed,
		Components: []modelspec.TrunkComponent{
			{Count: n, Spec: modelspec.Spec{ACF: paper.ACF, Marginal: paper.Marginal}},
		},
	}
}

func getTrunks(b *testing.B) *trunkFixture {
	trunkOnce.Do(func() {
		ctx := context.Background()
		trunkFix.trunks = make(map[int]*trunk.Trunk, len(trunkLadderSources))
		for _, n := range trunkLadderSources {
			t, err := trunk.Open(ctx, trunkLadderSpec(n, 1), trunk.Options{})
			if err != nil {
				trunkErr = err
				return
			}
			trunkFix.trunks[n] = t
		}
		trunkFix.serial, trunkErr = trunk.Open(ctx, trunkLadderSpec(64, 1), trunk.Options{Workers: 1})
	})
	if trunkErr != nil {
		b.Fatal(trunkErr)
	}
	return &trunkFix
}

func benchTrunkFill(b *testing.B, t *trunk.Trunk) {
	out := make([]float64, trunkFillFrames)
	t.Fill(out) // warm the slab and the par pool before the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Fill(out)
	}
	elapsed := b.Elapsed()
	frames := float64(b.N) * trunkFillFrames
	b.ReportMetric(float64(elapsed.Nanoseconds())/frames, "ns/frame")
	b.ReportMetric(frames/elapsed.Seconds()/float64(runtime.GOMAXPROCS(0)), "frames/sec/core")
}

// BenchTrunkFill4 fills aggregate frames from a 4-source trunk with the
// full worker pool.
func BenchTrunkFill4(b *testing.B) { benchTrunkFill(b, getTrunks(b).trunks[4]) }

// BenchTrunkFill64 is the 64-source rung — the fleet-scale shape trafficd
// trunk sessions serve.
func BenchTrunkFill64(b *testing.B) { benchTrunkFill(b, getTrunks(b).trunks[64]) }

// BenchTrunkFill1024 is the stress rung: a thousand component streams per
// aggregate frame.
func BenchTrunkFill1024(b *testing.B) { benchTrunkFill(b, getTrunks(b).trunks[1024]) }

// BenchTrunkFillSerial64 runs the 64-source trunk single-threaded. Its
// allocs_per_op column is the zero-steady-state-allocation gate: every
// component row lives in the open-time slab, so a nonzero count is a
// regression in the fan-out path.
func BenchTrunkFillSerial64(b *testing.B) { benchTrunkFill(b, getTrunks(b).serial) }
