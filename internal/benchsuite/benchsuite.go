// Package benchsuite defines the fast-path ablation benchmarks once, so
// that both `go test -bench` (via bench_test.go) and the standalone
// cmd/bench JSON reporter run the exact same measurements.
//
// Each benchmark is a flat, self-contained func(*testing.B): cmd/bench
// drives them through testing.Benchmark, which discards sub-benchmark
// results, so none of these use b.Run.
//
// Fixtures (the exact n=20000 plan is ~1.6 GB and takes seconds to build)
// are created lazily and shared across benchmarks via sync.Once.
package benchsuite

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
)

// Bench is one named benchmark in the suite.
type Bench struct {
	Name string
	F    func(b *testing.B)
}

// Suite returns the ablation benchmarks in reporting order. Names are
// grouped by ablation: each pair (or cold/warm, serial/parallel duo) is
// meant to be read as a ratio.
func Suite() []Bench {
	return []Bench{
		{"FlatPlanPath/n=4096", BenchFlatPlanPath},
		{"RaggedPlanPath/n=4096", BenchRaggedPlanPath},
		{"ExactPath/n=20000", BenchExactPath20000},
		{"TruncatedPath/n=20000", BenchTruncatedPath20000},
		{"NewPlanSerial/n=12288", BenchNewPlanSerial},
		{"NewPlanParallel/n=12288", BenchNewPlanParallel},
		{"PlanCacheCold/n=1024", BenchPlanCacheCold},
		{"PlanCacheWarm/n=1024", BenchPlanCacheWarm},
		{"DHPathReference/n=4096", BenchDHPathReference},
		{"DHPathInto/n=4096", BenchDHPathInto},
		{"DHPathRealInto/n=4096", BenchDHPathRealInto},
		{"DHBatch/n=4096,b=8", BenchDHBatch},
		{"FFTForwardReference/n=8192", BenchFFTForwardReference},
		{"FFTForwardTabled/n=8192", BenchFFTForwardTabled},
		{"FFTRealForward/n=8192", BenchFFTRealForward},
		{"FFTHermitianReal/n=8192", BenchFFTHermitianReal},
		{"TransformApplyExact/n=4096", BenchTransformApplyExact},
		{"TransformApplyLUT/n=4096", BenchTransformApplyLUT},
		{"StreamTruncatedFill/n=4096", BenchStreamTruncatedFill4096},
		{"StreamTruncatedFill/n=16384", BenchStreamTruncatedFill16384},
		{"StreamTruncatedFill/n=65536", BenchStreamTruncatedFill65536},
		{"StreamBlockFill/n=4096", BenchStreamBlockFill4096},
		{"StreamBlockFill/n=16384", BenchStreamBlockFill16384},
		{"StreamBlockFill/n=65536", BenchStreamBlockFill65536},
		{"BatchExactFill/n=4096", BenchBatchExactFill4096},
		{"BatchExactFill/n=16384", BenchBatchExactFill16384},
		{"BatchExactFill/n=65536", BenchBatchExactFill65536},
		{"StreamBlockRefill/n=7831", BenchStreamBlockRefill},
		{"StreamStepMany/s=32,n=1024", BenchStreamStepMany},
		{"StreamStepAffinity/s=32,n=1024", BenchStreamStepAffinity},
		{"TrunkFill/s=4", BenchTrunkFill4},
		{"TrunkFill/s=64", BenchTrunkFill64},
		{"TrunkFill/s=1024", BenchTrunkFill1024},
		{"TrunkFillSerial/s=64", BenchTrunkFillSerial64},
		{"RegistryCounterAdd", BenchRegistryCounterAdd},
		{"SpanStartEnd/off", BenchSpanStartEndOff},
		{"SpanStartEnd/on", BenchSpanStartEndOn},
		{"QueueMCTelemetry/off", BenchQueueMCTelemetryOff},
		{"QueueMCTelemetry/on", BenchQueueMCTelemetryOn},
		{"DHPathTelemetry/off", BenchDHPathTelemetryOff},
		{"DHPathTelemetry/on", BenchDHPathTelemetryOn},
		{"StreamBlockFillStatmon/off", BenchStreamBlockFillStatmonOff},
		{"StreamBlockFillStatmon/on", BenchStreamBlockFillStatmonOn},
	}
}

// benchModel is the fixture background process: FGN with H = 0.8, a
// long-range dependent model squarely in the paper's regime where the
// truncated-AR approximation is hardest (power-law ACF tail).
var benchModel = acf.FGN{H: 0.8}

const (
	flatRaggedLen = 4096
	fastPathLen   = 20000
	parallelLen   = 12288
	cacheLen      = 1024

	// fastACFTol is the enforced absolute ACF-error budget for the
	// truncated-AR fixture; Truncate fails (and the benchmark aborts) if
	// the frozen AR order cannot hold it over the full plan window.
	fastACFTol = 0.02
)

var (
	flatOnce sync.Once
	flatPlan *hosking.Plan
	flatErr  error

	raggedOnce sync.Once
	raggedPlan *hosking.RaggedPlan
	raggedErr  error

	bigOnce   sync.Once
	bigPlan   *hosking.Plan
	truncated *hosking.Truncated
	bigErr    error
)

func getFlatPlan(b *testing.B) *hosking.Plan {
	flatOnce.Do(func() { flatPlan, flatErr = hosking.NewPlan(benchModel, flatRaggedLen) })
	if flatErr != nil {
		b.Fatal(flatErr)
	}
	return flatPlan
}

func getRaggedPlan(b *testing.B) *hosking.RaggedPlan {
	raggedOnce.Do(func() { raggedPlan, raggedErr = hosking.NewRaggedPlan(benchModel, flatRaggedLen) })
	if raggedErr != nil {
		b.Fatal(raggedErr)
	}
	return raggedPlan
}

func getBigPlan(b *testing.B) (*hosking.Plan, *hosking.Truncated) {
	bigOnce.Do(func() {
		bigPlan, bigErr = hosking.NewPlan(benchModel, fastPathLen)
		if bigErr != nil {
			return
		}
		truncated, bigErr = bigPlan.Truncate(hosking.TruncateOptions{ACFTol: fastACFTol})
		if bigErr != nil {
			return
		}
		if e := truncated.MaxACFError(); e > fastACFTol {
			bigErr = fmt.Errorf("benchsuite: truncated plan ACF error %g exceeds budget %g", e, fastACFTol)
		}
	})
	if bigErr != nil {
		b.Fatal(bigErr)
	}
	return bigPlan, truncated
}

// BenchFlatPlanPath generates full paths through the flat (single
// allocation, reversed rows, unit-stride CondMean) plan layout.
func BenchFlatPlanPath(b *testing.B) {
	plan := getFlatPlan(b)
	r := rng.New(1)
	out := make([]float64, flatRaggedLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Generate(r, out)
	}
}

// BenchRaggedPlanPath generates the same paths through the seed's ragged
// [][]float64 layout (the pre-refactor baseline, kept as a reference
// implementation). Bit-identical output; the difference is pure memory
// layout.
func BenchRaggedPlanPath(b *testing.B) {
	plan := getRaggedPlan(b)
	r := rng.New(1)
	out := make([]float64, flatRaggedLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Generate(r, out)
	}
}

// BenchExactPath20000 is the exact O(n^2) Hosking generation baseline at
// paper-overflow scale.
func BenchExactPath20000(b *testing.B) {
	plan, _ := getBigPlan(b)
	r := rng.New(1)
	out := make([]float64, fastPathLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Generate(r, out)
	}
}

// BenchTruncatedPath20000 generates the same-length paths through the
// truncated AR(p) fast path (exact below the frozen order, O(p) per step
// above it), with the induced ACF error bounded by fastACFTol.
func BenchTruncatedPath20000(b *testing.B) {
	_, tr := getBigPlan(b)
	r := rng.New(1)
	out := make([]float64, fastPathLen)
	b.ReportMetric(float64(tr.Order()), "ar-order")
	b.ReportMetric(tr.MaxACFError(), "acf-err")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Generate(r, out)
	}
}

// BenchNewPlanSerial builds the Durbin-Levinson plan single-threaded.
func BenchNewPlanSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hosking.NewPlanOpts(benchModel, parallelLen, hosking.PlanOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchNewPlanParallel builds the same plan with the chunked parallel
// recursion across GOMAXPROCS workers (bit-identical output).
func BenchNewPlanParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if _, err := hosking.NewPlanOpts(benchModel, parallelLen, hosking.PlanOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchPlanCacheCold measures a cache miss: every iteration purges the
// cache and pays the full Durbin-Levinson build.
func BenchPlanCacheCold(b *testing.B) {
	cache := hosking.NewPlanCache(hosking.DefaultCacheCap)
	for i := 0; i < b.N; i++ {
		cache.Purge()
		if _, err := cache.Get(benchModel, cacheLen); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchPlanCacheWarm measures a cache hit: fingerprint the ACF table and
// return the shared plan.
func BenchPlanCacheWarm(b *testing.B) {
	cache := hosking.NewPlanCache(hosking.DefaultCacheCap)
	if _, err := cache.Get(benchModel, cacheLen); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Get(benchModel, cacheLen); err != nil {
			b.Fatal(err)
		}
	}
}
