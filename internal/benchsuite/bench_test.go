package benchsuite

import "testing"

// BenchmarkSuite exposes the suite to `go test -bench`, e.g.
//
//	go test ./internal/benchsuite -bench 'Suite/DHPathTelemetry' -count 5
//
// cmd/bench runs the same Bench funcs directly (testing.Benchmark discards
// sub-benchmark results, so the suite stays flat).
func BenchmarkSuite(b *testing.B) {
	for _, bm := range Suite() {
		b.Run(bm.Name, bm.F)
	}
}
