package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MetricFamily is one parsed family from a text exposition: its metadata
// plus every sample line that belongs to it.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter | gauge | summary | histogram | untyped
	Samples []Sample
}

// Sample is one parsed sample line.
type Sample struct {
	Name   string // full sample name including _sum/_count/_bucket suffix
	Labels string // raw label block including braces, or ""
	Value  float64
}

// ParseExposition parses and lints Prometheus text exposition format
// (version 0.0.4). Beyond parsing, it enforces the lint rules the
// exposition tests rely on: at most one HELP and one TYPE per family, TYPE
// before that family's samples, no duplicate sample lines, and valid
// float values. Sample names with _sum/_count/_bucket suffixes are folded
// into their summary/histogram family.
func ParseExposition(r io.Reader) (map[string]*MetricFamily, error) {
	fams := make(map[string]*MetricFamily)
	seenSamples := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseMeta(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := s.Name + s.Labels
		if seenSamples[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seenSamples[key] = true
		fam := familyFor(fams, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE line", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// parseMeta handles "# HELP name text" and "# TYPE name type" comment lines.
func parseMeta(line string, fams map[string]*MetricFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return nil // free-form comment: legal, ignored
	}
	name := fields[2]
	switch fields[1] {
	case "HELP":
		f := fams[name]
		if f == nil {
			f = &MetricFamily{Name: name, Type: "untyped"}
			fams[name] = f
		}
		if f.Help != "" {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		if len(fields) < 4 || fields[3] == "" {
			return fmt.Errorf("empty HELP for %s", name)
		}
		f.Help = fields[3]
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("missing type for %s", name)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "summary", "histogram", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %s", typ, name)
		}
		f := fams[name]
		if f == nil {
			f = &MetricFamily{Name: name, Type: "untyped"}
			fams[name] = f
		}
		if f.Type != "untyped" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.Type = typ
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("malformed label block in %q", line)
		}
		s.Name = rest[:i]
		s.Labels = rest[i : j+1]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample line %q", line)
		}
		s.Name = fields[0]
		rest = strings.TrimSpace(fields[1])
	}
	// A timestamp may trail the value; we only emit value-only lines but
	// accept the full grammar.
	valField := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valField = rest[:i]
	}
	v, err := strconv.ParseFloat(valField, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valField, err)
	}
	s.Value = v
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	return s, nil
}

// familyFor resolves a sample name to its family, folding the summary and
// histogram component suffixes onto the base family when one is declared.
func familyFor(fams map[string]*MetricFamily, sampleName string) *MetricFamily {
	if f, ok := fams[sampleName]; ok {
		return f
	}
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(sampleName, suf); ok {
			if f, ok := fams[base]; ok && (f.Type == "summary" || f.Type == "histogram") {
				return f
			}
		}
	}
	return nil
}

// Lint applies family-level checks that need the whole exposition: every
// family must carry HELP and a concrete TYPE, and histogram families must
// end in a +Inf bucket. Returns all problems found.
func Lint(fams map[string]*MetricFamily) []string {
	var probs []string
	for name, f := range fams {
		if f.Help == "" {
			probs = append(probs, name+": missing HELP")
		}
		if f.Type == "untyped" {
			probs = append(probs, name+": missing TYPE")
		}
		// A labeled histogram family with no children yet legitimately
		// renders only its HELP/TYPE header (matching how empty vec
		// families expose their names for scrape gates), so the +Inf rule
		// applies only once samples exist.
		if f.Type == "histogram" && len(f.Samples) > 0 {
			hasInf := false
			for _, s := range f.Samples {
				if strings.HasSuffix(s.Name, "_bucket") && strings.Contains(s.Labels, `le="+Inf"`) {
					hasInf = true
				}
			}
			if !hasInf {
				probs = append(probs, name+": histogram missing +Inf bucket")
			}
		}
	}
	return probs
}
