// Package obs is the unified, dependency-free observability layer shared by
// trafficd and the offline CLIs: a process-wide metrics registry rendered in
// Prometheus text exposition format, lightweight span tracing of the
// modeling pipeline with NDJSON emission and a run-manifest rollup, and
// estimator convergence telemetry (running p-hat, standard error,
// normalized variance, IS-vs-MC variance ratio).
//
// Everything here is stdlib-only and determinism-neutral: telemetry reads
// clocks and counters but never touches seeds, replication order, or any
// value that feeds a result, so enabling it cannot change a generated
// frame or an estimate by a single bit.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry: trafficd serves it on /metrics and
// the CLIs fold a snapshot of it into their run manifests, so both surfaces
// report through one set of counters.
var Default = NewRegistry()

// Registry is a set of named metric families rendered in Prometheus text
// exposition format. Registration is get-or-create: asking twice for the
// same name returns the same collector, so packages can idempotently attach
// their metrics without coordinating init order.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	coll            collector
}

// collector renders a family's sample lines (everything below HELP/TYPE).
type collector interface {
	samples(name string) []sampleLine
}

type sampleLine struct {
	suffix string // appended to the family name ("", "_sum", "_count", "_bucket")
	labels string // rendered label block including braces, or ""
	value  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the existing family for name or creates one via mk.
// A name reused with a different metric type is a programmer error.
func (r *Registry) register(name, help, typ string, mk func() collector) collector {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f.coll
	}
	f := &family{name: name, help: help, typ: typ, coll: mk()}
	r.families[name] = f
	return f.coll
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Collectors

// Counter is a monotonically increasing float64 (Prometheus counters are
// floats; fractional increments carry e.g. busy seconds). Adds are lock-free.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter. Negative deltas are a programmer error and are
// ignored rather than corrupting monotonicity.
func (c *Counter) Add(v float64) {
	if v < 0 || c == nil {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) samples(string) []sampleLine {
	return []sampleLine{{value: c.Value()}}
}

// Gauge is a settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) samples(string) []sampleLine {
	return []sampleLine{{value: g.Value()}}
}

// funcCollector renders a value read at scrape time (used to surface
// counters owned elsewhere, e.g. the plan cache, without copying them).
type funcCollector struct {
	fn func() float64
}

func (f funcCollector) samples(string) []sampleLine {
	return []sampleLine{{value: f.fn()}}
}

// vec is the shared child table behind labeled collectors.
type vec struct {
	mu       sync.Mutex
	labels   []string
	children map[string]any // keyed by rendered label block
	mk       func() any
}

func newVec(labels []string, mk func() any) *vec {
	return &vec{labels: labels, children: make(map[string]any), mk: mk}
}

func (v *vec) with(values ...string) any {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: vec expects %d label values, got %d", len(v.labels), len(values)))
	}
	key := renderLabels(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = v.mk()
		v.children[key] = c
	}
	return c
}

func (v *vec) sortedKeys() []string {
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderLabels(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// CounterVec is a family of counters split by a fixed label set.
type CounterVec struct {
	v *vec
}

// With returns the child counter for the given label values (in the order
// the labels were declared), creating it on first use.
func (cv *CounterVec) With(values ...string) *Counter {
	return cv.v.with(values...).(*Counter)
}

func (cv *CounterVec) samples(string) []sampleLine {
	cv.v.mu.Lock()
	defer cv.v.mu.Unlock()
	out := make([]sampleLine, 0, len(cv.v.children))
	for _, k := range cv.v.sortedKeys() {
		out = append(out, sampleLine{labels: k, value: cv.v.children[k].(*Counter).Value()})
	}
	return out
}

// GaugeVec is a family of gauges split by a fixed label set.
type GaugeVec struct {
	v *vec
}

// With returns the child gauge for the given label values (in the order
// the labels were declared), creating it on first use.
func (gv *GaugeVec) With(values ...string) *Gauge {
	return gv.v.with(values...).(*Gauge)
}

func (gv *GaugeVec) samples(string) []sampleLine {
	gv.v.mu.Lock()
	defer gv.v.mu.Unlock()
	out := make([]sampleLine, 0, len(gv.v.children))
	for _, k := range gv.v.sortedKeys() {
		out = append(out, sampleLine{labels: k, value: gv.v.children[k].(*Gauge).Value()})
	}
	return out
}

// SummaryVec is a family of (sum, count) pairs split by a fixed label set —
// the minimal Prometheus summary (no quantiles), enough for rate/latency
// arithmetic on the scrape side.
type SummaryVec struct {
	v *vec
}

type summary struct {
	mu    sync.Mutex
	sum   float64
	count uint64
}

// Observe records one measurement under the given label values.
func (sv *SummaryVec) Observe(x float64, values ...string) {
	s := sv.v.with(values...).(*summary)
	s.mu.Lock()
	s.sum += x
	s.count++
	s.mu.Unlock()
}

func (sv *SummaryVec) samples(string) []sampleLine {
	sv.v.mu.Lock()
	defer sv.v.mu.Unlock()
	out := make([]sampleLine, 0, 2*len(sv.v.children))
	for _, k := range sv.v.sortedKeys() {
		s := sv.v.children[k].(*summary)
		s.mu.Lock()
		sum, count := s.sum, s.count
		s.mu.Unlock()
		out = append(out,
			sampleLine{suffix: "_sum", labels: k, value: sum},
			sampleLine{suffix: "_count", labels: k, value: float64(count)})
	}
	return out
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; a +Inf bucket is implicit.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // per-bucket (non-cumulative), len(bounds)+1
	sum    float64
	n      uint64
}

// Observe records one measurement.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.sum += x
	h.n++
	h.mu.Unlock()
}

func (h *Histogram) samples(string) []sampleLine {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]sampleLine, 0, len(h.bounds)+3)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		out = append(out, sampleLine{
			suffix: "_bucket",
			labels: `{le="` + formatFloat(b) + `"}`,
			value:  float64(cum),
		})
	}
	cum += h.counts[len(h.bounds)]
	out = append(out,
		sampleLine{suffix: "_bucket", labels: `{le="+Inf"}`, value: float64(cum)},
		sampleLine{suffix: "_sum", value: h.sum},
		sampleLine{suffix: "_count", value: float64(h.n)})
	return out
}

// Quantile estimates the q-quantile by linear interpolation inside the
// owning bucket — the same estimate PromQL's histogram_quantile computes on
// an instant vector. Observations in the +Inf bucket clamp to the highest
// finite bound. Returns NaN when the histogram is empty or q is outside
// [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 || q < 0 || q > 1 || len(h.bounds) == 0 {
		return math.NaN()
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		cum += float64(c)
		if cum >= target && c > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			} else if h.bounds[0] < 0 {
				lo = h.bounds[0]
			}
			frac := (target - (cum - float64(c))) / float64(c)
			return lo + (h.bounds[i]-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramVec is a family of fixed-bucket histograms split by a label set;
// every child shares the same bucket bounds.
type HistogramVec struct {
	bounds []float64
	v      *vec
}

// With returns the child histogram for the given label values (in the order
// the labels were declared), creating it on first use.
func (hv *HistogramVec) With(values ...string) *Histogram {
	return hv.v.with(values...).(*Histogram)
}

func (hv *HistogramVec) samples(string) []sampleLine {
	hv.v.mu.Lock()
	defer hv.v.mu.Unlock()
	out := make([]sampleLine, 0, (len(hv.bounds)+3)*len(hv.v.children))
	for _, k := range hv.v.sortedKeys() {
		h := hv.v.children[k].(*Histogram)
		h.mu.Lock()
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			out = append(out, sampleLine{
				suffix: "_bucket",
				labels: mergeLE(k, formatFloat(b)),
				value:  float64(cum),
			})
		}
		cum += h.counts[len(h.bounds)]
		out = append(out,
			sampleLine{suffix: "_bucket", labels: mergeLE(k, "+Inf"), value: float64(cum)},
			sampleLine{suffix: "_sum", labels: k, value: h.sum},
			sampleLine{suffix: "_count", labels: k, value: float64(h.n)})
		h.mu.Unlock()
	}
	return out
}

// mergeLE splices an le label into a rendered label block: {a="b"} becomes
// {a="b",le="0.01"}.
func mergeLE(labelBlock, le string) string {
	return labelBlock[:len(labelBlock)-1] + `,le="` + le + `"}`
}

// ---------------------------------------------------------------------------
// Registration

// Counter returns (creating if needed) the counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", func() collector { return &Counter{} }).(*Counter)
}

// Gauge returns (creating if needed) the gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", func() collector { return &Gauge{} }).(*Gauge)
}

// CounterVec returns a counter family split by the given labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return r.register(name, help, "counter", func() collector {
		return &CounterVec{v: newVec(labels, func() any { return &Counter{} })}
	}).(*CounterVec)
}

// GaugeVec returns a gauge family split by the given labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return r.register(name, help, "gauge", func() collector {
		return &GaugeVec{v: newVec(labels, func() any { return &Gauge{} })}
	}).(*GaugeVec)
}

// SummaryVec returns a (sum, count) summary family split by the given labels.
func (r *Registry) SummaryVec(name, help string, labels ...string) *SummaryVec {
	return r.register(name, help, "summary", func() collector {
		return &SummaryVec{v: newVec(labels, func() any { return &summary{} })}
	}).(*SummaryVec)
}

// Histogram returns a fixed-bucket histogram; bounds must ascend.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	bounds = checkBounds(bounds)
	return r.register(name, help, "histogram", func() collector {
		return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}).(*Histogram)
}

// HistogramVec returns a histogram family split by the given labels, every
// child sharing the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	bounds = checkBounds(bounds)
	return r.register(name, help, "histogram", func() collector {
		return &HistogramVec{bounds: bounds, v: newVec(labels, func() any {
			return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		})}
	}).(*HistogramVec)
}

// checkBounds validates ascending bucket bounds and returns a private copy
// with any caller-supplied trailing +Inf bound stripped: the exposition
// renderer always appends the implicit +Inf bucket, so keeping an explicit
// one would emit two le="+Inf" lines — a duplicate sample ParseExposition
// rejects (found by the registry race test scraping such a histogram).
func checkBounds(bounds []float64) []float64 {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	bounds = append([]float64(nil), bounds...)
	if n := len(bounds); n > 0 && math.IsInf(bounds[n-1], 1) {
		bounds = bounds[:n-1]
	}
	return bounds
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time; use it to surface monotone counters owned by another package.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", func() collector { return funcCollector{fn: fn} })
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func() collector { return funcCollector{fn: fn} })
}

// ---------------------------------------------------------------------------
// Rendering

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, one HELP and TYPE line each,
// then the samples. Empty vec families still render their HELP/TYPE header
// so dashboards and scrape gates can discover every documented series.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.coll.samples(f.name) {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, with the special values spelled +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns the registry as a plain name -> value map (labeled
// families become nested maps keyed by the rendered label block). This is
// the /debug/vars-style dump and what CLI run manifests embed.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	out := make(map[string]any, len(fams))
	for _, f := range fams {
		lines := f.coll.samples(f.name)
		if len(lines) == 1 && lines[0].suffix == "" && lines[0].labels == "" {
			out[f.name] = sanitizeFloat(lines[0].value)
			continue
		}
		m := make(map[string]any, len(lines))
		for _, s := range lines {
			m[s.suffix+s.labels] = sanitizeFloat(s.value)
		}
		out[f.name] = m
	}
	return out
}

// sanitizeFloat makes a value JSON-encodable: non-finite floats become
// strings (encoding/json rejects +Inf and NaN).
func sanitizeFloat(v float64) any {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return formatFloat(v)
	}
	return v
}

// Handler serves the text exposition (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// DumpHandler serves the Snapshot as indented JSON (mount at /debug/vars).
func (r *Registry) DumpHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}
