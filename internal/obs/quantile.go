package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// HistogramQuantile estimates the q-quantile of a parsed histogram family
// from its cumulative _bucket samples — the scrape-side counterpart of
// Histogram.Quantile, used by loadgen to cross-check the server-observed
// request latency against its own client-side measurements.
//
// match restricts the estimate to bucket samples whose label block contains
// the given substring (e.g. `endpoint="frames"`); the empty string matches
// every bucket, aggregating across children of a HistogramVec. The second
// return value is false when the family holds no matching observations.
func HistogramQuantile(f *MetricFamily, match string, q float64) (float64, bool) {
	if f == nil || f.Type != "histogram" || q < 0 || q > 1 {
		return 0, false
	}
	// Cumulative counts summed per bound across matching label sets.
	byBound := make(map[float64]float64)
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		if match != "" && !strings.Contains(s.Labels, match) {
			continue
		}
		le, ok := parseLE(s.Labels)
		if !ok {
			continue
		}
		byBound[le] += s.Value
	}
	if len(byBound) == 0 {
		return 0, false
	}
	bounds := make([]float64, 0, len(byBound))
	for b := range byBound {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	total := byBound[bounds[len(bounds)-1]] // the +Inf bucket holds the count
	if total == 0 {
		return 0, false
	}
	target := q * total
	prevBound, prevCum := 0.0, 0.0
	for _, b := range bounds {
		cum := byBound[b]
		if cum >= target && cum > prevCum {
			if math.IsInf(b, 1) {
				// No upper edge: clamp to the highest finite bound.
				return prevBound, true
			}
			if prevCum == 0 && b <= 0 {
				// First bucket with a non-positive edge: no assumed zero
				// lower bound to interpolate from.
				return b, true
			}
			frac := (target - prevCum) / (cum - prevCum)
			return prevBound + (b-prevBound)*frac, true
		}
		if !math.IsInf(b, 1) {
			prevBound = b
		}
		prevCum = cum
	}
	return prevBound, true
}

// parseLE extracts the le label value from a rendered label block.
func parseLE(labels string) (float64, bool) {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return 0, false
	}
	rest := labels[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
