package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Get-or-create returns the same collector.
	if r.Counter("test_total", "a counter") != c {
		t.Fatal("re-registration did not return the same counter")
	}
}

func TestRegisterTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type clash")
		}
	}()
	r.Gauge("clash_total", "h")
}

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("concurrent_total", "h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
}

func TestVecAndHistogramExposition(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("jobs_total", "jobs by kind", "kind")
	cv.With("fit").Add(2)
	cv.With("qsim").Inc()
	sv := r.SummaryVec("dur_seconds", "durations", "kind", "status")
	sv.Observe(0.25, "fit", "ok")
	sv.Observe(0.75, "fit", "ok")
	sv.Observe(1.5, "fit", "failed")
	h := r.Histogram("frames", "frames per request", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`jobs_total{kind="fit"} 2`,
		`jobs_total{kind="qsim"} 1`,
		`dur_seconds_sum{kind="fit",status="ok"} 1`,
		`dur_seconds_count{kind="fit",status="ok"} 2`,
		`dur_seconds_count{kind="fit",status="failed"} 1`,
		`frames_bucket{le="10"} 1`,
		`frames_bucket{le="100"} 2`,
		`frames_bucket{le="+Inf"} 3`,
		`frames_sum 5055`,
		`frames_count 3`,
		"# TYPE jobs_total counter",
		"# TYPE dur_seconds summary",
		"# TYPE frames histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// The output must parse and lint cleanly through our own parser.
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if probs := Lint(fams); len(probs) > 0 {
		t.Fatalf("lint problems: %v", probs)
	}
	if fams["jobs_total"].Type != "counter" || len(fams["jobs_total"].Samples) != 2 {
		t.Fatalf("jobs_total parsed wrong: %+v", fams["jobs_total"])
	}
}

func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("shard_sessions", "sessions per shard", "shard")
	gv.With("0").Set(3)
	gv.With("1").Add(2)
	gv.With("1").Add(-1)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE shard_sessions gauge",
		`shard_sessions{shard="0"} 3`,
		`shard_sessions{shard="1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if probs := Lint(fams); len(probs) > 0 {
		t.Fatalf("lint problems: %v", probs)
	}
	if fams["shard_sessions"].Type != "gauge" || len(fams["shard_sessions"].Samples) != 2 {
		t.Fatalf("shard_sessions parsed wrong: %+v", fams["shard_sessions"])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("esc_total", "h", "path")
	cv.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
}

func TestFuncCollectorsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	hits := 7.0
	r.CounterFunc("cache_hits_total", "h", func() float64 { return hits })
	r.GaugeFunc("inf_gauge", "h", func() float64 { return math.Inf(1) })
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "cache_hits_total 7") {
		t.Fatalf("missing func counter:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "inf_gauge +Inf") {
		t.Fatalf("missing +Inf rendering:\n%s", b.String())
	}
	snap := r.Snapshot()
	if snap["cache_hits_total"] != 7.0 {
		t.Fatalf("snapshot hits = %v", snap["cache_hits_total"])
	}
	// Snapshot must be JSON-encodable even with non-finite values.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.DumpHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if m["served_total"] != 1.0 {
		t.Fatalf("dump served_total = %v", m["served_total"])
	}
}

func TestParserLintCatchesDuplicates(t *testing.T) {
	bad := "# HELP x h\n# TYPE x counter\nx 1\nx 2\n"
	if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
		t.Fatal("expected duplicate-sample error")
	}
	bad = "# HELP x h\n# TYPE x counter\n# TYPE x gauge\n"
	if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
		t.Fatal("expected duplicate-TYPE error")
	}
	bad = "x 1\n"
	if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
		t.Fatal("expected missing-TYPE error")
	}
}
