package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestMeterPlainMC(t *testing.T) {
	var snaps []Convergence
	m := NewMeter("mc", 100, 10, func(c Convergence) { snaps = append(snaps, c) })
	hits := 0
	for i := 0; i < 100; i++ {
		hit := i%4 == 0 // p = 0.25
		if hit {
			hits++
		}
		if hit {
			m.Add(1, true)
		} else {
			m.Add(0, false)
		}
	}
	m.Finish() // should be a no-op: 100 % 10 == 0
	if len(snaps) != 10 {
		t.Fatalf("got %d snapshots, want 10", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Completed != 100 || last.Hits != hits {
		t.Fatalf("last = %+v", last)
	}
	if math.Abs(last.P-0.25) > 1e-12 {
		t.Fatalf("p = %v, want 0.25", last.P)
	}
	// For indicator weights the variance is p(1-p), so the MC-vs-self
	// variance ratio must be exactly 1.
	if math.Abs(last.VarianceRatio-1) > 1e-9 {
		t.Fatalf("variance ratio = %v, want 1", last.VarianceRatio)
	}
	wantSE := math.Sqrt(0.25 * 0.75 / 100)
	if math.Abs(last.StdErr-wantSE) > 1e-12 {
		t.Fatalf("stderr = %v, want %v", last.StdErr, wantSE)
	}
}

func TestMeterISWeights(t *testing.T) {
	m := NewMeter("is", 4, 100, nil) // emit disabled; pull via Snapshot
	m.Add(2e-6, true)
	m.Add(0, false)
	m.Add(6e-6, true)
	m.Add(0, false)
	c := m.Snapshot()
	if c.Completed != 4 || c.Hits != 2 {
		t.Fatalf("snapshot = %+v", c)
	}
	wantP := 2e-6
	if math.Abs(c.P-wantP) > 1e-18 {
		t.Fatalf("p = %v, want %v", c.P, wantP)
	}
	// NormVar finite and large, ratio >> 1 for a rare event with good IS.
	if c.NormVar <= 0 || math.IsInf(c.NormVar, 0) {
		t.Fatalf("normvar = %v", c.NormVar)
	}
	if c.VarianceRatio < 1000 {
		t.Fatalf("variance ratio = %v, want large", c.VarianceRatio)
	}
}

func TestMeterFinishEmitsPartial(t *testing.T) {
	var snaps []Convergence
	m := NewMeter("mc", 100, 64, func(c Convergence) { snaps = append(snaps, c) })
	for i := 0; i < 10; i++ { // cancelled early, never reaches an emit point
		m.Add(0, false)
	}
	m.Finish()
	if len(snaps) != 1 || snaps[0].Completed != 10 {
		t.Fatalf("snaps = %+v", snaps)
	}
}

func TestConvergenceJSONInfAsNull(t *testing.T) {
	c := Convergence{
		Estimator: "mc", Completed: 10, Total: 100,
		P: 0, StdErr: 0, NormVar: math.Inf(1), VarianceRatio: math.NaN(),
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"type":"convergence"`, `"norm_var":null`, `"variance_ratio":null`, `"p":0`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON %s missing %q", s, want)
		}
	}
}

func TestNilMeterIsNoOp(t *testing.T) {
	var m *Meter
	m.Add(1, true)
	m.Finish()
	if c := m.Snapshot(); c.Completed != 0 {
		t.Fatalf("nil meter snapshot = %+v", c)
	}
}

func TestProgressWriterWholeLines(t *testing.T) {
	var buf strings.Builder
	emit := ProgressWriter(&buf)
	emit(Convergence{Estimator: "is", Completed: 1, Total: 2, P: 0.5})
	emit(Convergence{Estimator: "is", Completed: 2, Total: 2, P: 0.5})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		if m["type"] != "convergence" {
			t.Fatalf("line %q missing type", l)
		}
	}
}
