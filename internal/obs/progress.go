package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"time"
)

// Convergence is one estimator progress snapshot: the running estimate and
// its error statistics partway through a replication sweep. For importance
// sampling, VarianceRatio is the paper's efficiency headline — the factor
// by which plain Monte Carlo's normalized variance exceeds the IS run's
// (so it reads as "MC would need this many times the replications"); for
// plain MC it is identically 1.
type Convergence struct {
	Estimator      string  // "is" | "mc" | "is-transient"
	Completed      int     // replications folded into this snapshot
	Total          int     // replications requested
	Hits           int     // replications that reached the rare event
	P              float64 // running estimate of the overflow probability
	StdErr         float64 // running standard error of P
	NormVar        float64 // running sample variance / P^2
	VarianceRatio  float64 // MC normalized variance ((1-P)/P) over NormVar
	RepsPerSec     float64
	ElapsedSeconds float64
}

// convergenceJSON mirrors Convergence for encoding; non-finite floats
// (p=0 early in a rare-event run makes NormVar infinite) become null so
// every snapshot is a valid JSON line.
type convergenceJSON struct {
	Type           string   `json:"type"`
	Estimator      string   `json:"estimator"`
	Completed      int      `json:"completed"`
	Total          int      `json:"total"`
	Hits           int      `json:"hits"`
	P              *float64 `json:"p"`
	StdErr         *float64 `json:"std_err"`
	NormVar        *float64 `json:"norm_var"`
	VarianceRatio  *float64 `json:"variance_ratio"`
	RepsPerSec     float64  `json:"reps_per_sec"`
	ElapsedSeconds float64  `json:"elapsed_sec"`
}

func finiteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// MarshalJSON renders the snapshot as a `"type":"convergence"` NDJSON
// object with non-finite statistics as null.
func (c Convergence) MarshalJSON() ([]byte, error) {
	return json.Marshal(convergenceJSON{
		Type:           "convergence",
		Estimator:      c.Estimator,
		Completed:      c.Completed,
		Total:          c.Total,
		Hits:           c.Hits,
		P:              finiteOrNil(c.P),
		StdErr:         finiteOrNil(c.StdErr),
		NormVar:        finiteOrNil(c.NormVar),
		VarianceRatio:  finiteOrNil(c.VarianceRatio),
		RepsPerSec:     c.RepsPerSec,
		ElapsedSeconds: c.ElapsedSeconds,
	})
}

// ProgressWriter returns a callback that emits each snapshot as one NDJSON
// line on w, serialized by a mutex so concurrent estimators (multiplexed
// qsim runs) interleave whole lines.
func ProgressWriter(w io.Writer) func(Convergence) {
	var mu sync.Mutex
	return func(c Convergence) {
		b, err := json.Marshal(c)
		if err != nil {
			return
		}
		b = append(b, '\n')
		mu.Lock()
		w.Write(b)
		mu.Unlock()
	}
}

// Meter accumulates per-replication outcomes in completion order and emits
// a Convergence snapshot every `every` completions plus a final one at
// Finish. It is the shared progress engine for queue.EstimateOverflowCtx
// (weight 1/0 indicators) and impsample.EstimateCtx (likelihood-ratio
// weights).
//
// The meter's accumulators are entirely separate from the rep-indexed
// buffers the estimators reduce for their final answer: completion order
// varies run to run, so snapshot values may differ across runs, but the
// final estimate never does.
type Meter struct {
	mu        sync.Mutex
	estimator string
	total     int
	every     int
	emit      func(Convergence)
	start     time.Time

	completed int
	hits      int
	sum       float64
	sumSq     float64
}

// NewMeter returns a meter emitting through emit (nil disables emission;
// snapshots can still be pulled with Snapshot). every <= 0 defaults to
// max(1, total/32).
func NewMeter(estimator string, total, every int, emit func(Convergence)) *Meter {
	if every <= 0 {
		every = total / 32
		if every < 1 {
			every = 1
		}
	}
	return &Meter{estimator: estimator, total: total, every: every, emit: emit, start: time.Now()}
}

// Add folds one completed replication (its weight contribution and whether
// it hit the rare event) into the meter, emitting a snapshot on every Nth
// completion. Nil-safe so estimators can call it unconditionally.
//
// emit runs under the meter's lock: snapshots arrive serialized and in
// completion order (monotone Completed), so callbacks need no locking of
// their own. Keep emit cheap — workers calling Add block while it runs.
func (m *Meter) Add(weight float64, hit bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	if hit {
		m.hits++
	}
	m.sum += weight
	m.sumSq += weight * weight
	if m.emit != nil && (m.completed%m.every == 0 || m.completed == m.total) {
		m.emit(m.snapshotLocked())
	}
}

// Snapshot returns the current running statistics.
func (m *Meter) Snapshot() Convergence {
	if m == nil {
		return Convergence{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

// Finish emits a final snapshot if the last Add didn't already (e.g. the
// run was cut short by context cancellation).
func (m *Meter) Finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.emit != nil && m.completed > 0 && m.completed%m.every != 0 && m.completed != m.total {
		m.emit(m.snapshotLocked())
	}
}

func (m *Meter) snapshotLocked() Convergence {
	n := float64(m.completed)
	elapsed := time.Since(m.start).Seconds()
	c := Convergence{
		Estimator:      m.estimator,
		Completed:      m.completed,
		Total:          m.total,
		Hits:           m.hits,
		ElapsedSeconds: elapsed,
	}
	if elapsed > 0 {
		c.RepsPerSec = n / elapsed
	}
	if m.completed == 0 {
		return c
	}
	p := m.sum / n
	variance := m.sumSq/n - p*p
	if variance < 0 {
		variance = 0 // guard FP cancellation
	}
	c.P = p
	c.StdErr = math.Sqrt(variance / n)
	c.NormVar = variance / (p * p)
	// Plain MC on the same p has per-rep variance p(1-p), normalized
	// (1-p)/p; the ratio is the IS efficiency factor (1 for MC itself).
	c.VarianceRatio = ((1 - p) / p) / c.NormVar
	return c
}
