package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("fit")
	sp.End(map[string]any{"k": 1}) // must not panic
	tr.Event("par.run", nil)
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer spans = %v", got)
	}
	if TracerFrom(context.Background()) != nil {
		t.Fatal("empty context should yield nil tracer")
	}
}

func TestTracerStreamsNDJSON(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	sp := tr.Start("plan")
	_ = make([]float64, 4096) // guarantee a nonzero alloc delta
	sp.End(map[string]any{"n": 4096, "hit": true})
	tr.Event("par.run", map[string]any{"workers": 4})

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2", len(lines))
	}
	if lines[0]["type"] != "span" || lines[0]["stage"] != "plan" {
		t.Fatalf("span line = %v", lines[0])
	}
	attrs := lines[0]["attrs"].(map[string]any)
	if attrs["n"] != 4096.0 || attrs["hit"] != true {
		t.Fatalf("attrs = %v", attrs)
	}
	if lines[1]["type"] != "par.run" || lines[1]["workers"] != 4.0 {
		t.Fatalf("event line = %v", lines[1])
	}

	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Stage != "plan" || spans[0].Seconds < 0 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestTracerContextRoundTrip(t *testing.T) {
	tr := NewTracer(nil)
	ctx := ContextWithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("tracer did not round-trip through context")
	}
	// Collect-only tracer still records spans.
	TracerFrom(ctx).Start("gen").End(nil)
	if len(tr.Spans()) != 1 {
		t.Fatalf("spans = %+v", tr.Spans())
	}
}

func TestManifestRollup(t *testing.T) {
	tr := NewTracer(nil)
	tr.Start("fit").End(map[string]any{"lags": 24})
	tr.Start("queue").End(nil)
	reg := NewRegistry()
	reg.Counter("runs_total", "h").Inc()

	m := tr.Manifest("qsim", []string{"-reps", "100"}, 42,
		map[string]any{"p": 1e-6}, reg)
	if m.Tool != "qsim" || m.Seed != 42 || len(m.Stages) != 2 {
		t.Fatalf("manifest = %+v", m)
	}
	if m.Stages[0].Stage != "fit" || m.Stages[1].Stage != "queue" {
		t.Fatalf("stage order = %+v", m.Stages)
	}
	if m.Metrics["runs_total"] != 1.0 {
		t.Fatalf("metrics snapshot = %v", m.Metrics)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("manifest not JSON-encodable: %v", err)
	}
	if !strings.Contains(string(b), `"stages"`) {
		t.Fatalf("manifest JSON missing stages: %s", b)
	}
}
