package obs

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"runtime"
	"sync"
	"time"
)

// Tracer records named spans over the modeling pipeline (fit, plan
// acquisition, Gaussian generation, transform, queue/IS) and optionally
// streams each completed span as one NDJSON line. All methods are safe on
// a nil receiver, so instrumented code paths need no telemetry-enabled
// branches: a nil tracer is a true no-op and leaves the hot path untouched.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer // nil: collect-only (manifest rollup without a stream)
	start  time.Time
	spans  []SpanRecord
	events []map[string]any
}

// SpanRecord is one completed stage: wall time, coarse allocation deltas
// (from runtime.MemStats, so only meaningful at stage granularity), and
// free-form attributes.
type SpanRecord struct {
	Type     string         `json:"type"` // always "span"
	Stage    string         `json:"stage"`
	StartSec float64        `json:"start_sec"` // offset from tracer start
	Seconds  float64        `json:"seconds"`
	Allocs   uint64         `json:"allocs"`
	Bytes    uint64         `json:"bytes"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Span is an in-flight stage measurement.
type Span struct {
	t          *Tracer
	stage      string
	begin      time.Time
	mallocs    uint64
	allocBytes uint64
}

// NewTracer returns a tracer that streams completed spans to w as NDJSON;
// a nil w collects spans for the manifest without streaming.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now()}
}

// Start begins a span. Reading runtime.MemStats costs microseconds, which
// is why spans wrap whole pipeline stages, never per-frame work.
func (t *Tracer) Start(stage string) *Span {
	if t == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Span{t: t, stage: stage, begin: time.Now(), mallocs: ms.Mallocs, allocBytes: ms.TotalAlloc}
}

// End completes the span, attaching attrs, and streams it if the tracer
// has a writer. Nil-safe.
func (s *Span) End(attrs map[string]any) {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec := SpanRecord{
		Type:     "span",
		Stage:    s.stage,
		StartSec: s.begin.Sub(s.t.start).Seconds(),
		Seconds:  time.Since(s.begin).Seconds(),
		Allocs:   ms.Mallocs - s.mallocs,
		Bytes:    ms.TotalAlloc - s.allocBytes,
		Attrs:    sanitizeAttrs(attrs),
	}
	t := s.t
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	w := t.w
	if w != nil {
		b, err := json.Marshal(rec)
		if err == nil {
			b = append(b, '\n')
			w.Write(b)
		}
	}
	t.mu.Unlock()
}

// Event records a one-off occurrence (e.g. a worker-pool run report) as an
// NDJSON line and keeps it for the manifest. Nil-safe.
func (t *Tracer) Event(kind string, attrs map[string]any) {
	if t == nil {
		return
	}
	rec := map[string]any{"type": kind, "t_sec": time.Since(t.start).Seconds()}
	for k, v := range sanitizeAttrs(attrs) {
		rec[k] = v
	}
	t.mu.Lock()
	t.events = append(t.events, rec)
	if t.w != nil {
		b, err := json.Marshal(rec)
		if err == nil {
			b = append(b, '\n')
			t.w.Write(b)
		}
	}
	t.mu.Unlock()
}

// Spans returns the completed spans recorded so far.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// sanitizeAttrs replaces non-finite floats, which encoding/json rejects,
// with their string spellings.
func sanitizeAttrs(attrs map[string]any) map[string]any {
	if attrs == nil {
		return nil
	}
	out := make(map[string]any, len(attrs))
	for k, v := range attrs {
		if f, ok := v.(float64); ok && (math.IsInf(f, 0) || math.IsNaN(f)) {
			out[k] = formatFloat(f)
			continue
		}
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// Context plumbing

type tracerKey struct{}

// ContextWithTracer attaches t to ctx; TracerFrom recovers it. A missing
// tracer yields nil, which every Tracer/Span method treats as a no-op, so
// library code can instrument unconditionally.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer attached to ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

type requestIDKey struct{}

// ContextWithRequestID attaches a request id to ctx so work spawned on the
// request path (span events, access-log lines) can be correlated.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request id attached to ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
