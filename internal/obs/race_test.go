package obs

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryScrapeRace hammers every collector kind from concurrent
// writers while scraping, parsing, and linting the exposition in a loop.
// Under -race this proves the snapshot path takes every lock it must; the
// parse step additionally guards against torn or duplicate sample lines.
//
// The histogram is deliberately registered with an explicit trailing +Inf
// bound: before checkBounds stripped it, that spelling rendered two
// le="+Inf" lines and ParseExposition rejected its own server's scrape as a
// duplicate sample — exactly the failure this test first uncovered.
func TestRegistryScrapeRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_ops_total", "ops")
	g := reg.Gauge("race_in_flight", "in flight")
	cv := reg.CounterVec("race_requests_total", "requests", "endpoint", "code")
	gv := reg.GaugeVec("race_shard_sessions", "sessions", "shard")
	h := reg.Histogram("race_latency_seconds", "latency",
		[]float64{0.001, 0.01, 0.1, 1, math.Inf(1)})
	hv := reg.HistogramVec("race_request_seconds", "request latency",
		[]float64{0.001, 0.01, 0.1, 1}, "endpoint")
	reg.GaugeFunc("race_func_gauge", "func gauge", func() float64 { return 42 })

	var stop atomic.Bool
	var wg sync.WaitGroup
	endpoints := []string{"frames", "step", "create"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The loop body runs at least once before checking stop, so the
			// final assertions below see every label set even if the scrape
			// loop finishes before this goroutine is first scheduled.
			for i := 0; ; i++ {
				c.Inc()
				g.Add(1)
				ep := endpoints[i%len(endpoints)]
				cv.With(ep, "200").Inc()
				gv.With("3").Set(float64(i))
				h.Observe(float64(i%100) / 50)
				hv.With(ep).Observe(float64(i%100) / 50)
				_ = h.Quantile(0.99)
				g.Add(-1)
				if stop.Load() {
					return
				}
			}
		}(w)
	}

	for i := 0; i < 200; i++ {
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		fams, err := ParseExposition(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("scrape %d failed to parse: %v", i, err)
		}
		if probs := Lint(fams); len(probs) > 0 {
			t.Fatalf("scrape %d lint: %v", i, probs)
		}
		reg.Snapshot()
	}
	stop.Store(true)
	wg.Wait()

	// Final scrape: the explicit-+Inf histogram must render exactly one
	// +Inf bucket and the vec children must carry merged le labels.
	var b strings.Builder
	reg.WriteText(&b)
	text := b.String()
	if n := strings.Count(text, `race_latency_seconds_bucket{le="+Inf"}`); n != 1 {
		t.Errorf("explicit-+Inf histogram rendered %d +Inf buckets, want 1", n)
	}
	if !strings.Contains(text, `race_request_seconds_bucket{endpoint="frames",le="+Inf"}`) {
		t.Errorf("histogram vec missing merged le label:\n%s", text)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "x", []float64{1, 2, 4, 8})
	// 100 observations uniform over (0, 4]: quantiles land mid-bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 25)
	}
	if q := h.Quantile(0.5); math.Abs(q-2) > 0.1 {
		t.Errorf("p50 = %v, want ~2", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Errorf("p100 = %v, want 4", q)
	}
	if !math.IsNaN(reg.Histogram("q2_seconds", "x", []float64{1}).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(100) // lands in +Inf bucket
	if q := h.Quantile(0.9999); q != 8 {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to 8", q)
	}
}

func TestHistogramQuantileFromExposition(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("lat_seconds", "x", []float64{0.5, 1, 2, 4}, "endpoint")
	for i := 1; i <= 100; i++ {
		hv.With("frames").Observe(float64(i) / 25)
		hv.With("step").Observe(0.1)
	}
	var b strings.Builder
	reg.WriteText(&b)
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	q, ok := HistogramQuantile(fams["lat_seconds"], `endpoint="frames"`, 0.5)
	if !ok || math.Abs(q-2) > 0.2 {
		t.Errorf("frames p50 = %v ok=%v, want ~2", q, ok)
	}
	q, ok = HistogramQuantile(fams["lat_seconds"], `endpoint="step"`, 0.99)
	if !ok || q > 0.5 {
		t.Errorf("step p99 = %v ok=%v, want <= 0.5", q, ok)
	}
	if _, ok := HistogramQuantile(fams["lat_seconds"], `endpoint="nope"`, 0.5); ok {
		t.Error("quantile for absent label set should report !ok")
	}
	if _, ok := HistogramQuantile(nil, "", 0.5); ok {
		t.Error("nil family should report !ok")
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := t.Context()
	if id := RequestIDFrom(ctx); id != "" {
		t.Errorf("empty ctx request id = %q", id)
	}
	ctx = ContextWithRequestID(ctx, "r-123")
	if id := RequestIDFrom(ctx); id != "r-123" {
		t.Errorf("request id = %q, want r-123", id)
	}
}
