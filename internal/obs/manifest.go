package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Manifest is the run-manifest artifact a CLI writes after a run: enough
// to reproduce it (tool, args, seed), see where the time went (stage
// spans), and read the outcome (estimator results, final metric values)
// without re-running anything.
type Manifest struct {
	Tool            string           `json:"tool"`
	Args            []string         `json:"args"`
	Seed            int64            `json:"seed"`
	GoVersion       string           `json:"go_version"`
	Start           time.Time        `json:"start"`
	DurationSeconds float64          `json:"duration_seconds"`
	Stages          []SpanRecord     `json:"stages"`
	Events          []map[string]any `json:"events,omitempty"`
	Results         map[string]any   `json:"results,omitempty"`
	Metrics         map[string]any   `json:"metrics,omitempty"`
}

// Manifest rolls the tracer's spans and events up into a Manifest. The
// registry snapshot (pass nil to omit) captures the process counters at
// the moment of writing — for a CLI that is effectively "this run".
func (t *Tracer) Manifest(tool string, args []string, seed int64, results map[string]any, reg *Registry) Manifest {
	m := Manifest{
		Tool:      tool,
		Args:      args,
		Seed:      seed,
		GoVersion: runtime.Version(),
		Results:   sanitizeAttrs(results),
	}
	if t != nil {
		t.mu.Lock()
		m.Start = t.start
		m.DurationSeconds = time.Since(t.start).Seconds()
		m.Stages = append([]SpanRecord(nil), t.spans...)
		m.Events = append([]map[string]any(nil), t.events...)
		t.mu.Unlock()
	}
	if reg != nil {
		m.Metrics = reg.Snapshot()
	}
	return m
}

// WriteManifestFile writes m as indented JSON to path.
func WriteManifestFile(path string, m Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
