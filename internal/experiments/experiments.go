// Package experiments regenerates every table and figure of the paper's
// evaluation. Each method of Lab corresponds to one exhibit (Table 1,
// Figs. 1-17), returns the underlying data as named series, and records
// paper-vs-measured notes. The Lab caches the expensive shared artifacts —
// the synthetic empirical traces (the substitute for "Last Action Hero",
// see DESIGN.md) and the fitted models — so the full suite runs each
// pipeline stage once.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"vbrsim/internal/baseline"
	"vbrsim/internal/core"
	"vbrsim/internal/hosking"
	"vbrsim/internal/impsample"
	"vbrsim/internal/mpegtrace"
	"vbrsim/internal/norros"
	"vbrsim/internal/queue"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
)

// Series is one named data series of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Result is the regenerated data behind one exhibit.
type Result struct {
	ID     string // e.g. "fig16"
	Title  string
	Series []Series
	Notes  []string // scalar findings, paper-vs-measured commentary
}

// AddNote appends a formatted note.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteData writes the result's series as whitespace-separated columns with
// comment headers (gnuplot-consumable).
func (r *Result) WriteData(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, "\n# series: %s\n", s.Name); err != nil {
			return err
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%g\t%g\n", s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Config scales the experiment suite.
type Config struct {
	// TraceFrames is the synthetic empirical trace length; default 1<<17
	// (about half the paper's 238,626 frames). Set 238626 for full scale.
	TraceFrames int
	// Seed drives everything deterministically.
	Seed uint64
	// Replications for Monte-Carlo/IS experiments; default 1000 (paper).
	Replications int
	// Quick shrinks sweeps (fewer buffer sizes, shorter horizons, fewer
	// replications) for benchmarks and smoke tests.
	Quick bool
	// FastPath switches the Section 4 queueing experiments to the
	// truncated-AR(p) Hosking fast path: per-step cost drops from O(k) to
	// O(p), and (outside Quick mode) Fig 16/17 extend their buffer sweeps
	// to paper-scale horizons beyond the exact-plan limit. The truncation
	// order and measured ACF error are recorded in the exhibit notes.
	FastPath bool
	// FastTol is the partial-correlation cutoff for FastPath truncation;
	// 0 selects the hosking default (1e-3).
	FastTol float64
}

func (c Config) withDefaults() Config {
	if c.TraceFrames == 0 {
		if c.Quick {
			c.TraceFrames = 1 << 15
		} else {
			c.TraceFrames = 1 << 17
		}
	}
	if c.Replications == 0 {
		if c.Quick {
			c.Replications = 200
		} else {
			c.Replications = 1000
		}
	}
	return c
}

// Lab caches shared artifacts across experiments.
type Lab struct {
	cfg Config

	once struct {
		intra, inter, iModel, gopModel, synTrace sync.Once
	}
	errIntra, errInter, errIModel, errGOP, errSyn error

	intraTrace *trace.Trace // intraframe-only encoding (Figs. 1-8)
	interTrace *trace.Trace // I-B-P encoding (Table 1, Figs. 9-13, queueing)
	iModel     *core.Model  // unified model of the intraframe record
	gopModel   *core.GOPModel
	synTrace   *trace.Trace // long synthetic composite trace (Figs. 9-13)
}

// NewLab creates a lab with the given configuration.
func NewLab(cfg Config) *Lab { return &Lab{cfg: cfg.withDefaults()} }

// IntraTrace returns the intraframe-only synthetic empirical record, the
// analogue of the paper's first (hardware intraframe) encoding that Figs.
// 1-8 are computed from.
func (l *Lab) IntraTrace() (*trace.Trace, error) {
	l.once.intra.Do(func() {
		cfg := mpegtrace.Config{
			Frames: l.cfg.TraceFrames,
			Seed:   l.cfg.Seed + 1,
			GOP:    []trace.FrameType{trace.FrameI},
			// Intraframe coding has no I/P/B size alternation.
			IScale: 1.0, PScale: 1.0, BScale: 1.0,
		}
		l.intraTrace, l.errIntra = mpegtrace.Generate(cfg)
	})
	return l.intraTrace, l.errIntra
}

// InterTrace returns the I-B-P synthetic empirical record, the analogue of
// the paper's PVRG re-encoding (Table 1, Figs. 9-13 and Section 4).
func (l *Lab) InterTrace() (*trace.Trace, error) {
	l.once.inter.Do(func() {
		l.interTrace, l.errInter = mpegtrace.Generate(mpegtrace.Config{
			Frames: l.cfg.TraceFrames,
			Seed:   l.cfg.Seed + 2,
		})
	})
	return l.interTrace, l.errInter
}

// IModel returns the unified model fitted to the intraframe record.
func (l *Lab) IModel() (*core.Model, error) {
	l.once.iModel.Do(func() {
		tr, err := l.IntraTrace()
		if err != nil {
			l.errIModel = err
			return
		}
		l.iModel, l.errIModel = core.Fit(tr.Sizes, core.FitOptions{Seed: l.cfg.Seed + 3})
	})
	return l.iModel, l.errIModel
}

// GOPModel returns the composite I-B-P model fitted to the interframe record.
func (l *Lab) GOPModel() (*core.GOPModel, error) {
	l.once.gopModel.Do(func() {
		tr, err := l.InterTrace()
		if err != nil {
			l.errGOP = err
			return
		}
		l.gopModel, l.errGOP = core.FitGOP(tr, core.FitOptions{Seed: l.cfg.Seed + 4})
	})
	return l.gopModel, l.errGOP
}

// SynTrace returns a long synthetic composite trace generated from the
// fitted GOP model, used for the Figs. 9-13 comparisons.
func (l *Lab) SynTrace() (*trace.Trace, error) {
	l.once.synTrace.Do(func() {
		g, err := l.GOPModel()
		if err != nil {
			l.errSyn = err
			return
		}
		n := l.cfg.TraceFrames
		l.synTrace, l.errSyn = g.Generate(n, l.cfg.Seed+5, core.BackendDaviesHarte)
	})
	return l.synTrace, l.errSyn
}

// ---------------------------------------------------------------------------
// Table 1

// Table1 reports the parameters of the synthetic empirical sequence next to
// the paper's values.
func (l *Lab) Table1() (*Result, error) {
	tr, err := l.InterTrace()
	if err != nil {
		return nil, err
	}
	s := tr.Summarize()
	r := &Result{ID: "table1", Title: "Parameters of compressed empirical video sequence"}
	r.AddNote("coder: synthetic MPEG-1 source simulator (paper: MPEG-1, PVRG 1.1)")
	r.AddNote("frames: %d (paper: 238,626; configurable via TraceFrames)", s.Frames)
	r.AddNote("duration: %.1f s at %.0f fps (paper: 7,956 s at 30 fps)", s.Duration, s.FrameRate)
	r.AddNote("GOP length: %d (paper: I period 12)", s.GOPLength)
	r.AddNote("mean %.0f bytes/frame, std %.0f, peak/mean %.1f", s.MeanBytes, s.StdBytes, s.PeakToMean)
	r.AddNote("frame mix: I=%d P=%d B=%d", s.TypeCounts[trace.FrameI], s.TypeCounts[trace.FrameP], s.TypeCounts[trace.FrameB])
	return r, nil
}

// ---------------------------------------------------------------------------
// Fig. 1: marginal histogram

// Fig1 regenerates the empirical bytes-per-frame histogram.
func (l *Lab) Fig1() (*Result, error) {
	tr, err := l.IntraTrace()
	if err != nil {
		return nil, err
	}
	hi := stats.Max(tr.Sizes) * 1.001
	h := stats.NewHistogram(tr.Sizes, 0, hi, 100)
	r := &Result{ID: "fig1", Title: "Empirical distribution of bytes/frame"}
	xs := make([]float64, len(h.Counts))
	for i := range xs {
		xs[i] = h.BinCenter(i)
	}
	r.Series = append(r.Series, Series{Name: "empirical", X: xs, Y: h.Frequencies()})
	r.AddNote("unimodal with a long right tail, as in the paper's Fig. 1")
	return r, nil
}

// ---------------------------------------------------------------------------
// Fig. 2: transform h(x)

// Fig2 tabulates the histogram-inversion transform h over [-6, 6].
func (l *Lab) Fig2() (*Result, error) {
	m, err := l.IModel()
	if err != nil {
		return nil, err
	}
	xs, hs := m.Transform.Table(-6, 6, 240)
	r := &Result{ID: "fig2", Title: "Transform h(x) from N(0,1) to the empirical marginal"}
	r.Series = append(r.Series, Series{Name: "h", X: xs, Y: hs})
	r.AddNote("monotone, convex in the upper tail (long-tailed marginal), as in Fig. 2")
	return r, nil
}

// ---------------------------------------------------------------------------
// Fig. 3: variance-time plot

// Fig3 regenerates the variance-time plot and its Hurst estimate.
func (l *Lab) Fig3() (*Result, error) {
	m, err := l.IModel()
	if err != nil {
		return nil, err
	}
	est := m.VT
	r := &Result{ID: "fig3", Title: "Variance-time plot"}
	r.Series = append(r.Series, Series{Name: "log10 var(X^(m)) vs log10 m", X: est.X, Y: est.Y})
	fit := Series{Name: "least-squares fit"}
	for _, x := range est.X {
		fit.X = append(fit.X, x)
		fit.Y = append(fit.Y, est.Slope*x+est.Intercept)
	}
	r.Series = append(r.Series, fit)
	r.AddNote("slope %.4f -> H = %.3f (paper: slope -0.2234 -> H = 0.89)", est.Slope, est.H)
	return r, nil
}

// ---------------------------------------------------------------------------
// Fig. 4: R/S pox diagram

// Fig4 regenerates the R/S pox diagram and its Hurst estimate.
func (l *Lab) Fig4() (*Result, error) {
	m, err := l.IModel()
	if err != nil {
		return nil, err
	}
	est := m.RS
	r := &Result{ID: "fig4", Title: "Pox diagram of R/S"}
	r.Series = append(r.Series, Series{Name: "log10 R/S vs log10 n", X: est.X, Y: est.Y})
	fit := Series{Name: "least-squares fit"}
	for _, x := range est.X {
		fit.X = append(fit.X, x)
		fit.Y = append(fit.Y, est.Slope*x+est.Intercept)
	}
	r.Series = append(r.Series, fit)
	r.AddNote("slope -> H = %.3f (paper: 0.92); combined decision H = %.3f (paper: 0.9)", est.H, m.H)
	return r, nil
}

// ---------------------------------------------------------------------------
// Fig. 5: empirical ACF

// Fig5 regenerates the empirical autocorrelation (lags 1-500) with its knee.
func (l *Lab) Fig5() (*Result, error) {
	tr, err := l.IntraTrace()
	if err != nil {
		return nil, err
	}
	maxLag := 500
	a := stats.Autocorrelation(tr.Sizes, maxLag)
	r := &Result{ID: "fig5", Title: "Estimated autocorrelation of the empirical trace"}
	r.Series = append(r.Series, acfSeries("empirical", a, 1, maxLag))
	m, err := l.IModel()
	if err == nil {
		r.AddNote("knee detected at lag %d (paper: 60-80)", m.Foreground.Knee)
	}
	return r, nil
}

// acfSeries converts an ACF slice (indexed by lag) to a Series over
// [lo, hi].
func acfSeries(name string, a []float64, lo, hi int) Series {
	s := Series{Name: name}
	for k := lo; k <= hi && k < len(a); k++ {
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, a[k])
	}
	return s
}

// ---------------------------------------------------------------------------
// Fig. 6: composite ACF fit

// Fig6 regenerates the two-component fit of the empirical ACF.
func (l *Lab) Fig6() (*Result, error) {
	tr, err := l.IntraTrace()
	if err != nil {
		return nil, err
	}
	m, err := l.IModel()
	if err != nil {
		return nil, err
	}
	maxLag := 500
	emp := stats.Autocorrelation(tr.Sizes, maxLag)
	r := &Result{ID: "fig6", Title: "Autocorrelation fitting result"}
	r.Series = append(r.Series, acfSeries("empirical", emp, 1, maxLag))
	expo := Series{Name: "exponential component"}
	pow := Series{Name: "power-law component"}
	for k := 1; k <= maxLag; k++ {
		expo.X = append(expo.X, float64(k))
		expo.Y = append(expo.Y, math.Exp(-m.Foreground.Rates[0]*float64(k)))
		pow.X = append(pow.X, float64(k))
		pow.Y = append(pow.Y, m.Foreground.L*math.Pow(float64(k), -m.Foreground.Beta))
	}
	r.Series = append(r.Series, expo, pow)
	r.AddNote("fit: exp(-%.5f k) below knee %d, %.4f k^-%.3f beyond (paper: exp(-0.00565k), 1.5947 k^-0.2, knee 60)",
		m.Foreground.Rates[0], m.Foreground.Knee, m.Foreground.L, m.Foreground.Beta)
	return r, nil
}

// ---------------------------------------------------------------------------
// Fig. 7: attenuation illustration

// Fig7 shows the ACF of the background X (target r-hat) against the ACF of
// the transformed foreground Y = h(X) before compensation.
func (l *Lab) Fig7() (*Result, error) {
	m, err := l.IModel()
	if err != nil {
		return nil, err
	}
	maxLag := 500
	pathLen := 1500
	reps := 20
	if l.cfg.Quick {
		pathLen, reps, maxLag = 600, 8, 200
	}
	plan, err := hosking.CachedPlan(m.Foreground, pathLen)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig7", Title: "ACFs of X and Y = h(X): the attenuation factor"}
	xACF, yACF, err := pooledTransformACF(plan, m, pathLen, reps, maxLag, l.cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	r.Series = append(r.Series,
		acfSeries("background X (target r-hat)", xACF, 1, maxLag),
		acfSeries("foreground Y = h(X)", yACF, 1, maxLag),
	)
	r.AddNote("measured attenuation a = %.3f (paper: 0.94)", m.Attenuation)
	return r, nil
}

// pooledTransformACF pools background and foreground ACFs over replications.
func pooledTransformACF(plan *hosking.Plan, m *core.Model, pathLen, reps, maxLag int, seed uint64) (xACF, yACF []float64, err error) {
	r := rng.New(seed)
	xa := make([]float64, maxLag+1)
	ya := make([]float64, maxLag+1)
	meanY := m.Marginal.Mean()
	for rep := 0; rep < reps; rep++ {
		x := plan.Path(r, pathLen)
		y := m.Transform.ApplySlice(x)
		ax := stats.AutocovarianceKnownMean(x, 0, maxLag)
		ay := stats.AutocovarianceKnownMean(y, meanY, maxLag)
		for k := range xa {
			xa[k] += ax[k]
			ya[k] += ay[k]
		}
	}
	xACF = make([]float64, maxLag+1)
	yACF = make([]float64, maxLag+1)
	for k := range xa {
		xACF[k] = xa[k] / xa[0]
		yACF[k] = ya[k] / ya[0]
	}
	return xACF, yACF, nil
}

// ---------------------------------------------------------------------------
// Fig. 8: final compensated match

// Fig8 compares the empirical ACF with the foreground ACF of the fully
// compensated model (Step 4 output) — the unified approach's headline match.
func (l *Lab) Fig8() (*Result, error) {
	tr, err := l.IntraTrace()
	if err != nil {
		return nil, err
	}
	m, err := l.IModel()
	if err != nil {
		return nil, err
	}
	maxLag := 500
	pathLen := 1500
	reps := 20
	if l.cfg.Quick {
		pathLen, reps, maxLag = 600, 8, 200
	}
	plan, err := m.Plan(pathLen)
	if err != nil {
		return nil, err
	}
	_, yACF, err := pooledTransformACF(plan, m, pathLen, reps, maxLag, l.cfg.Seed+8)
	if err != nil {
		return nil, err
	}
	emp := stats.Autocorrelation(tr.Sizes, maxLag)
	r := &Result{ID: "fig8", Title: "Empirical vs final simulated autocorrelation"}
	r.Series = append(r.Series,
		acfSeries("empirical", emp, 1, maxLag),
		acfSeries("simulation (compensated model)", yACF, 1, maxLag),
	)
	// Quantify the match over the LRD regime.
	var sse float64
	n := 0
	for k := m.Foreground.Knee; k <= maxLag && k < len(emp); k++ {
		d := emp[k] - yACF[k]
		sse += d * d
		n++
	}
	r.AddNote("RMS ACF error beyond the knee: %.4f over %d lags", math.Sqrt(sse/float64(n)), n)
	return r, nil
}

// ---------------------------------------------------------------------------
// Figs. 9-11: composite I-B-P ACF comparison

// Fig9to11 compares the full-stream (I-B-P) autocorrelation of the synthetic
// composite trace against the empirical interframe trace over lags 1-490.
func (l *Lab) Fig9to11() (*Result, error) {
	emp, err := l.InterTrace()
	if err != nil {
		return nil, err
	}
	syn, err := l.SynTrace()
	if err != nil {
		return nil, err
	}
	maxLag := 490
	if l.cfg.Quick {
		maxLag = 150
	}
	ea := stats.Autocorrelation(emp.Sizes, maxLag)
	sa := stats.Autocorrelation(syn.Sizes, maxLag)
	r := &Result{ID: "fig9to11", Title: "Composite I-B-P autocorrelation: simulation vs empirical (lags 1-490)"}
	r.Series = append(r.Series,
		acfSeries("empirical trace", ea, 1, maxLag),
		acfSeries("simulation", sa, 1, maxLag),
	)
	// GOP oscillation check (both series must peak at multiples of 12).
	r.AddNote("GOP-periodic oscillation: empirical acf[12]=%.3f vs acf[6]=%.3f; synthetic acf[12]=%.3f vs acf[6]=%.3f",
		ea[12], ea[6], sa[12], sa[6])
	return r, nil
}

// ---------------------------------------------------------------------------
// Fig. 12: histogram comparison

// Fig12 compares synthetic and empirical marginal histograms.
func (l *Lab) Fig12() (*Result, error) {
	emp, err := l.InterTrace()
	if err != nil {
		return nil, err
	}
	syn, err := l.SynTrace()
	if err != nil {
		return nil, err
	}
	hi := math.Max(stats.Max(emp.Sizes), stats.Max(syn.Sizes)) * 1.001
	he := stats.NewHistogram(emp.Sizes, 0, hi, 80)
	hs := stats.NewHistogram(syn.Sizes, 0, hi, 80)
	xs := make([]float64, 80)
	for i := range xs {
		xs[i] = he.BinCenter(i)
	}
	r := &Result{ID: "fig12", Title: "Histograms: simulation vs empirical"}
	r.Series = append(r.Series,
		Series{Name: "empirical", X: xs, Y: he.Frequencies()},
		Series{Name: "simulation", X: xs, Y: hs.Frequencies()},
	)
	// Total-variation distance between the binned marginals.
	var tv float64
	fe, fs := he.Frequencies(), hs.Frequencies()
	for i := range fe {
		tv += math.Abs(fe[i] - fs[i])
	}
	r.AddNote("total-variation distance between binned marginals: %.4f", tv/2)
	return r, nil
}

// ---------------------------------------------------------------------------
// Fig. 13: Q-Q plot

// Fig13 regenerates the Q-Q comparison of the marginals.
func (l *Lab) Fig13() (*Result, error) {
	emp, err := l.InterTrace()
	if err != nil {
		return nil, err
	}
	syn, err := l.SynTrace()
	if err != nil {
		return nil, err
	}
	qe, qs, err := stats.QQPairs(emp.Sizes, syn.Sizes, 100)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig13", Title: "Q-Q plot: simulation vs empirical marginals"}
	r.Series = append(r.Series, Series{Name: "quantile pairs", X: qe, Y: qs})
	// Measure departure from the diagonal in relative terms over the body.
	var rel float64
	n := 0
	for i := 10; i < 90; i++ {
		if qe[i] > 0 {
			rel += math.Abs(qs[i]-qe[i]) / qe[i]
			n++
		}
	}
	r.AddNote("mean relative quantile deviation (10th-90th pct): %.3f", rel/float64(n))
	return r, nil
}

// ---------------------------------------------------------------------------
// Queueing experiments (Section 4)

// queueSetup bundles what the Section 4 experiments need.
type queueSetup struct {
	model    *core.Model
	plan     *hosking.Plan
	fast     *hosking.Truncated // non-nil when Config.FastPath is on
	meanRate float64
}

// fastPlanLen bounds the exact-plan length backing the fast path: long
// horizons are generated past the plan by the frozen AR row, and short
// horizons still get a plan long enough for the truncation order to fit.
const (
	fastPlanLenMax = 4096
	fastPlanLenMin = 1024
)

// newQueueSetup builds a background plan long enough for the horizon. With
// FastPath the plan length is decoupled from the horizon (capped at
// fastPlanLenMax) and a truncated-AR view is derived from it; the
// Durbin-Levinson recursion is incremental, so conditional quantities below
// the truncation order are bit-identical to the exact plan's regardless of
// the differing plan length.
func (l *Lab) newQueueSetup(horizon int) (*queueSetup, error) {
	m, err := l.IModel()
	if err != nil {
		return nil, err
	}
	planLen := horizon
	if l.cfg.FastPath {
		if planLen < fastPlanLenMin {
			planLen = fastPlanLenMin
		}
		if planLen > fastPlanLenMax {
			planLen = fastPlanLenMax
		}
	}
	plan, err := m.Plan(planLen)
	if err != nil {
		return nil, err
	}
	qs := &queueSetup{model: m, plan: plan, meanRate: m.MeanRate()}
	if l.cfg.FastPath {
		fast, err := plan.Truncate(hosking.TruncateOptions{Tol: l.cfg.FastTol})
		if err != nil {
			return nil, fmt.Errorf("experiments: fast path: %w", err)
		}
		qs.fast = fast
	}
	return qs, nil
}

// fastNote records the fast-path parameters on an exhibit.
func (r *Result) fastNote(tr *hosking.Truncated) {
	if tr == nil {
		return
	}
	r.AddNote("fast path: truncated AR(%d), max induced ACF error %.3g over the plan window",
		tr.Order(), tr.MaxACFError())
}

// Fig14 regenerates the normalized-variance valley over the twisted mean m*
// (k=500, utilization 0.2, normalized buffer 25, N replications).
func (l *Lab) Fig14() (*Result, error) {
	horizon := 500
	twists := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0}
	if l.cfg.Quick {
		horizon = 200
		twists = []float64{1.0, 2.0, 3.0, 4.0}
	}
	qs, err := l.newQueueSetup(horizon)
	if err != nil {
		return nil, err
	}
	service, err := queue.UtilizationService(qs.meanRate, 0.2)
	if err != nil {
		return nil, err
	}
	bufAbs := 25 * qs.meanRate // normalized buffer size 25
	cfg := impsample.Config{
		Plan:         qs.plan,
		FastPlan:     qs.fast,
		Transform:    qs.model.Transform,
		Service:      service,
		Buffer:       bufAbs,
		Horizon:      horizon,
		Replications: l.cfg.Replications,
		Seed:         l.cfg.Seed + 14,
	}
	results, best, err := impsample.SearchTwist(cfg, twists)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig14", Title: "Normalized variance of the IS estimator vs twisted mean m*"}
	s := Series{Name: "normalized variance"}
	maxFinite := 0.0
	for _, tr := range results {
		if !math.IsInf(tr.Result.NormVar, 1) && tr.Result.NormVar > maxFinite {
			maxFinite = tr.Result.NormVar
		}
	}
	for _, tr := range results {
		nv := tr.Result.NormVar
		if math.IsInf(nv, 1) {
			nv = maxFinite * 2 // plot placeholder for degenerate twists
		}
		s.X = append(s.X, tr.Twist)
		s.Y = append(s.Y, nv)
	}
	r.Series = append(r.Series, s)
	if best >= 0 {
		vr := impsample.VarianceReduction(results[best].Result)
		r.AddNote("valley at m* = %.1f with P = %.3g, variance reduction %.0fx (paper: m* = 3.2, ~1000x)",
			results[best].Twist, results[best].Result.P, vr)
	}
	r.fastNote(qs.fast)
	return r, nil
}

// Fig15 regenerates the transient overflow probability for empty vs full
// initial buffer (b = 200 normalized, utilization 0.4).
func (l *Lab) Fig15() (*Result, error) {
	horizon := 2000
	checkpoints := []int{100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000}
	if l.cfg.Quick {
		horizon = 400
		checkpoints = []int{50, 100, 200, 400}
	}
	qs, err := l.newQueueSetup(horizon)
	if err != nil {
		return nil, err
	}
	service, err := queue.UtilizationService(qs.meanRate, 0.4)
	if err != nil {
		return nil, err
	}
	bufAbs := 200 * qs.meanRate
	base := impsample.Config{
		Plan:         qs.plan,
		FastPlan:     qs.fast,
		Transform:    qs.model.Transform,
		Service:      service,
		Buffer:       bufAbs,
		Twist:        2.0,
		Replications: l.cfg.Replications,
		Seed:         l.cfg.Seed + 15,
	}
	empty, err := impsample.EstimateTransient(base, checkpoints)
	if err != nil {
		return nil, err
	}
	fullCfg := base
	fullCfg.InitialOccupancy = bufAbs
	fullCfg.Seed = l.cfg.Seed + 16
	full, err := impsample.EstimateTransient(fullCfg, checkpoints)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig15", Title: "Transient buffer overflow probability: empty vs full initial buffer"}
	se := Series{Name: "initial zero buffer occupation (log10 P)"}
	sf := Series{Name: "initial full buffer occupation (log10 P)"}
	for j, k := range checkpoints {
		se.X = append(se.X, float64(k))
		se.Y = append(se.Y, log10OrFloor(empty[j].P))
		sf.X = append(sf.X, float64(k))
		sf.Y = append(sf.Y, log10OrFloor(full[j].P))
	}
	r.Series = append(r.Series, se, sf)
	r.AddNote("full-buffer start converges from above, empty-buffer from below, meeting at steady state (paper Fig. 15)")
	r.fastNote(qs.fast)
	return r, nil
}

// log10OrFloor protects the log of a zero estimate.
func log10OrFloor(p float64) float64 {
	if p <= 0 {
		return -12
	}
	return math.Log10(p)
}

// Fig16 regenerates overflow probability vs normalized buffer size for
// utilizations 0.2/0.4/0.6/0.8, both model-driven (IS) and trace-driven.
func (l *Lab) Fig16() (*Result, error) {
	buffers := []float64{25, 50, 75, 100, 150, 200, 250}
	utils := []float64{0.2, 0.4, 0.6, 0.8}
	twists := map[float64]float64{0.2: 3.2, 0.4: 2.4, 0.6: 1.6, 0.8: 0.8}
	if l.cfg.Quick {
		buffers = []float64{25, 75, 150}
		utils = []float64{0.4, 0.8}
	} else if l.cfg.FastPath {
		// Paper-scale extension: horizons past the exact-plan limit are
		// exactly what the O(p) fast path affords.
		buffers = append(buffers, 375, 500)
	}
	maxHorizon := int(10 * buffers[len(buffers)-1])
	qs, err := l.newQueueSetup(maxHorizon)
	if err != nil {
		return nil, err
	}
	emp, err := l.IntraTrace()
	if err != nil {
		return nil, err
	}
	empMean := stats.Mean(emp.Sizes)

	r := &Result{ID: "fig16", Title: "Overflow probability vs buffer size (k = 10b)"}
	for _, util := range utils {
		service, err := queue.UtilizationService(qs.meanRate, util)
		if err != nil {
			return nil, err
		}
		sim := Series{Name: fmt.Sprintf("simulation util=%.1f (log10 P)", util)}
		for _, b := range buffers {
			cfg := impsample.Config{
				Plan:         qs.plan,
				FastPlan:     qs.fast,
				Transform:    qs.model.Transform,
				Service:      service,
				Buffer:       b * qs.meanRate,
				Horizon:      int(10 * b),
				Twist:        twists[util],
				Replications: l.cfg.Replications,
				Seed:         l.cfg.Seed + 160 + uint64(util*10),
			}
			res, err := impsample.Estimate(cfg)
			if err != nil {
				return nil, err
			}
			sim.X = append(sim.X, b)
			sim.Y = append(sim.Y, log10OrFloor(res.P))
		}
		r.Series = append(r.Series, sim)

		// Trace-driven steady-state estimate (one long replication).
		empService := empMean / util
		tr := Series{Name: fmt.Sprintf("data trace util=%.1f (log10 P)", util)}
		for _, b := range buffers {
			p, err := queue.TraceOverflow(emp.Sizes, empService, b*empMean, 1000)
			if err != nil {
				return nil, err
			}
			tr.X = append(tr.X, b)
			tr.Y = append(tr.Y, log10OrFloor(p))
		}
		r.Series = append(r.Series, tr)
	}
	r.AddNote("loss decays slower than exponentially in b; higher utilization shifts curves up (paper Fig. 16)")
	r.AddNote("trace-driven curves use one long replication, so they diverge from the model at low utilization (as the paper observes)")
	r.fastNote(qs.fast)
	return r, nil
}

// Fig17 compares overflow probability under three models at utilization 0.6:
// SRD-only, SRD+LRD (the unified model), and fGn-only, plus the empirical
// trace.
func (l *Lab) Fig17() (*Result, error) {
	buffers := []float64{25, 50, 75, 100, 150, 200, 250}
	if l.cfg.Quick {
		buffers = []float64{25, 75, 150}
	} else if l.cfg.FastPath {
		buffers = append(buffers, 375, 500)
	}
	util := 0.6
	maxHorizon := int(10 * buffers[len(buffers)-1])
	qs, err := l.newQueueSetup(maxHorizon)
	if err != nil {
		return nil, err
	}
	m := qs.model
	service, err := queue.UtilizationService(qs.meanRate, util)
	if err != nil {
		return nil, err
	}

	srdBG, err := baseline.SRDOnlyBackground(m.Foreground.Rates[0], m.Attenuation, m.Foreground.Knee)
	if err != nil {
		return nil, err
	}
	fgnBG, err := baseline.FGNOnlyBackground(m.H)
	if err != nil {
		return nil, err
	}
	variantPlanLen := qs.plan.Len() // matches the fast-path cap when active
	srdPlan, err := hosking.CachedPlan(srdBG, variantPlanLen)
	if err != nil {
		return nil, err
	}
	fgnPlan, err := hosking.CachedPlan(fgnBG, variantPlanLen)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name string
		plan *hosking.Plan
		fast *hosking.Truncated
	}{
		{"SRD+LRD (unified model)", qs.plan, qs.fast},
		{"SRD only", srdPlan, nil},
		{"fGn background only", fgnPlan, nil},
	}
	if l.cfg.FastPath {
		for vi := 1; vi < len(variants); vi++ {
			fast, err := variants[vi].plan.Truncate(hosking.TruncateOptions{Tol: l.cfg.FastTol})
			if err != nil {
				return nil, fmt.Errorf("experiments: fast path (%s): %w", variants[vi].name, err)
			}
			variants[vi].fast = fast
		}
	}
	r := &Result{ID: "fig17", Title: "Overflow probability vs buffer size for four cases (util 0.6)"}
	for vi, v := range variants {
		s := Series{Name: v.name + " (log10 P)"}
		for _, b := range buffers {
			cfg := impsample.Config{
				Plan:         v.plan,
				FastPlan:     v.fast,
				Transform:    m.Transform,
				Service:      service,
				Buffer:       b * qs.meanRate,
				Horizon:      int(10 * b),
				Twist:        1.6,
				Replications: l.cfg.Replications,
				Seed:         l.cfg.Seed + 170 + uint64(vi),
			}
			res, err := impsample.Estimate(cfg)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, b)
			s.Y = append(s.Y, log10OrFloor(res.P))
		}
		r.Series = append(r.Series, s)
	}
	// Empirical trace curve.
	emp, err := l.IntraTrace()
	if err != nil {
		return nil, err
	}
	empMean := stats.Mean(emp.Sizes)
	tr := Series{Name: "empirical trace (log10 P)"}
	for _, b := range buffers {
		p, err := queue.TraceOverflow(emp.Sizes, empMean/util, b*empMean, 1000)
		if err != nil {
			return nil, err
		}
		tr.X = append(tr.X, b)
		tr.Y = append(tr.Y, log10OrFloor(p))
	}
	r.Series = append(r.Series, tr)
	r.AddNote("expected ordering at large b: SRD-only decays fastest; SRD+LRD tracks the trace; fGn-only underestimates loss at small b (paper Fig. 17)")
	r.fastNote(qs.fast)
	return r, nil
}

// ExtNorros is an extension exhibit (not in the paper): it compares the
// paper's importance-sampling overflow estimates against the closed-form
// fractional-Brownian approximation of Norros (the paper's ref. [23]),
// parameterized from the same fitted model. The two should agree on the
// Weibull decay exponent 2-2H even where absolute levels differ.
func (l *Lab) ExtNorros() (*Result, error) {
	buffers := []float64{25, 50, 75, 100, 150, 200, 250}
	if l.cfg.Quick {
		buffers = []float64{25, 75, 150}
	}
	util := 0.6
	maxHorizon := int(10 * buffers[len(buffers)-1])
	qs, err := l.newQueueSetup(maxHorizon)
	if err != nil {
		return nil, err
	}
	m := qs.model
	service, err := queue.UtilizationService(qs.meanRate, util)
	if err != nil {
		return nil, err
	}
	tr, err := l.IntraTrace()
	if err != nil {
		return nil, err
	}
	_, variance := stats.MeanVar(tr.Sizes)
	params, err := norros.FromComposite(m.Marginal, variance, m.Foreground)
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "extnorros", Title: "Extension: IS simulation vs Norros fBm approximation (util 0.6)"}
	sim := Series{Name: "IS simulation (log10 P)"}
	ana := Series{Name: "Norros phi-form (log10 P)"}
	for _, b := range buffers {
		cfg := impsample.Config{
			Plan:         qs.plan,
			FastPlan:     qs.fast,
			Transform:    m.Transform,
			Service:      service,
			Buffer:       b * qs.meanRate,
			Horizon:      int(10 * b),
			Twist:        1.6,
			Replications: l.cfg.Replications,
			Seed:         l.cfg.Seed + 180,
		}
		res, err := impsample.Estimate(cfg)
		if err != nil {
			return nil, err
		}
		phi, _, err := params.OverflowProbability(service, b*qs.meanRate)
		if err != nil {
			return nil, err
		}
		sim.X = append(sim.X, b)
		sim.Y = append(sim.Y, log10OrFloor(res.P))
		ana.X = append(ana.X, b)
		ana.Y = append(ana.Y, log10OrFloor(phi))
	}
	r.Series = append(r.Series, sim, ana)
	r.AddNote("fBm params: m=%.0f, v=%.3g, H=%.3f; both curves decay as b^(2-2H)=b^%.2f in log space",
		params.MeanRate, params.VarCoeff, params.H, 2-2*params.H)
	return r, nil
}

// ---------------------------------------------------------------------------
// Suite

// entry pairs an exhibit ID with its generator.
type entry struct {
	id  string
	run func() (*Result, error)
}

// entries lists every exhibit in paper order.
func (l *Lab) entries() []entry {
	return []entry{
		{"table1", l.Table1},
		{"fig1", l.Fig1},
		{"fig2", l.Fig2},
		{"fig3", l.Fig3},
		{"fig4", l.Fig4},
		{"fig5", l.Fig5},
		{"fig6", l.Fig6},
		{"fig7", l.Fig7},
		{"fig8", l.Fig8},
		{"fig9to11", l.Fig9to11},
		{"fig12", l.Fig12},
		{"fig13", l.Fig13},
		{"fig14", l.Fig14},
		{"fig15", l.Fig15},
		{"fig16", l.Fig16},
		{"fig17", l.Fig17},
		{"extnorros", l.ExtNorros},
	}
}

// IDs returns the identifiers of all exhibits, in paper order.
func (l *Lab) IDs() []string {
	es := l.entries()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.id
	}
	return out
}

// Run regenerates a single exhibit by ID.
func (l *Lab) Run(id string) (*Result, error) {
	for _, e := range l.entries() {
		if e.id == id {
			return e.run()
		}
	}
	ids := l.IDs()
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown exhibit %q (known: %v)", id, ids)
}

// All regenerates every exhibit, stopping at the first error.
func (l *Lab) All() ([]*Result, error) {
	var out []*Result
	for _, e := range l.entries() {
		res, err := e.run()
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
