package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// quickLab returns a lab sized for fast tests; artifacts are cached across
// calls within one test binary.
var sharedLab = NewLab(Config{Quick: true, Seed: 99})

func TestIDsCoverPaperExhibits(t *testing.T) {
	ids := sharedLab.IDs()
	want := []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9to11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "extnorros"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := sharedLab.Run("fig99"); err == nil {
		t.Error("unknown exhibit accepted")
	}
}

func TestTable1(t *testing.T) {
	r, err := sharedLab.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Notes) < 5 {
		t.Errorf("Table1 notes = %v", r.Notes)
	}
}

func TestFig1HistogramSumsToOne(t *testing.T) {
	r, err := sharedLab.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range r.Series[0].Y {
		sum += f
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("histogram mass = %v", sum)
	}
}

func TestFig2TransformMonotone(t *testing.T) {
	r, err := sharedLab.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	ys := r.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatalf("transform not monotone at %d", i)
		}
	}
}

func TestFig3And4HurstEstimates(t *testing.T) {
	r3, err := sharedLab.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	r4, err := sharedLab.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Series) != 2 || len(r4.Series) != 2 {
		t.Error("VT/RS exhibits need points + fit series")
	}
	m, err := sharedLab.IModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.H < 0.7 || m.H >= 1 {
		t.Errorf("combined H = %v, want LRD range", m.H)
	}
}

func TestFig5Through8ACFSeries(t *testing.T) {
	for _, run := range []func() (*Result, error){
		sharedLab.Fig5, sharedLab.Fig6, sharedLab.Fig7, sharedLab.Fig8,
	} {
		r, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Series) == 0 || len(r.Series[0].X) == 0 {
			t.Errorf("%s: empty series", r.ID)
		}
		for _, s := range r.Series {
			if len(s.X) != len(s.Y) {
				t.Errorf("%s/%s: X/Y length mismatch", r.ID, s.Name)
			}
		}
	}
}

func TestFig8MatchQuality(t *testing.T) {
	r, err := sharedLab.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Empirical and simulated ACF must track each other: mean absolute
	// error below 0.12 over the plotted lags.
	emp, sim := r.Series[0].Y, r.Series[1].Y
	n := len(emp)
	if len(sim) < n {
		n = len(sim)
	}
	var mae float64
	for i := 0; i < n; i++ {
		mae += math.Abs(emp[i] - sim[i])
	}
	mae /= float64(n)
	if mae > 0.12 {
		t.Errorf("fig8 mean ACF error = %v", mae)
	}
}

func TestFig9to11GOPOscillation(t *testing.T) {
	r, err := sharedLab.Fig9to11()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		// Both series must show the GOP periodicity: lag 12 above lag 6.
		var a6, a12 float64
		for i, x := range s.X {
			if x == 6 {
				a6 = s.Y[i]
			}
			if x == 12 {
				a12 = s.Y[i]
			}
		}
		if a12 <= a6 {
			t.Errorf("%s: no GOP oscillation (acf6=%v acf12=%v)", s.Name, a6, a12)
		}
	}
}

func TestFig12TotalVariationSmall(t *testing.T) {
	r, err := sharedLab.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatal("need two histograms")
	}
	var tv float64
	for i := range r.Series[0].Y {
		tv += math.Abs(r.Series[0].Y[i] - r.Series[1].Y[i])
	}
	tv /= 2
	if tv > 0.15 {
		t.Errorf("marginal TV distance = %v, want < 0.15", tv)
	}
}

func TestFig13QQNearDiagonal(t *testing.T) {
	r, err := sharedLab.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	qe, qs := r.Series[0].X, r.Series[0].Y
	var rel float64
	n := 0
	for i := len(qe) / 10; i < len(qe)*9/10; i++ {
		if qe[i] > 0 {
			rel += math.Abs(qs[i]-qe[i]) / qe[i]
			n++
		}
	}
	rel /= float64(n)
	if rel > 0.2 {
		t.Errorf("Q-Q relative deviation = %v, want < 0.2", rel)
	}
}

func TestFig14ValleyExists(t *testing.T) {
	r, err := sharedLab.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	s := r.Series[0]
	if len(s.X) < 3 {
		t.Fatal("too few twist candidates")
	}
	// The normalized variance at the best twist must undercut the worst by
	// a substantial factor (the "valley").
	minV, maxV := math.Inf(1), 0.0
	for _, v := range s.Y {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if !(minV < maxV/2) {
		t.Errorf("no valley: min %v max %v", minV, maxV)
	}
}

func TestFig15InitialConditionsConverge(t *testing.T) {
	r, err := sharedLab.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	empty, full := r.Series[0].Y, r.Series[1].Y
	last := len(empty) - 1
	// Full-buffer start must dominate early.
	if full[0] < empty[0] {
		t.Errorf("full start %v below empty start %v at first checkpoint", full[0], empty[0])
	}
	// The two curves converge: final gap smaller than initial gap.
	if math.Abs(full[last]-empty[last]) > math.Abs(full[0]-empty[0])+0.1 {
		t.Errorf("transient curves did not converge: first gap %v, last gap %v",
			full[0]-empty[0], full[last]-empty[last])
	}
}

func TestFig16Shapes(t *testing.T) {
	r, err := sharedLab.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	// Per utilization there are two series (simulation, trace). Overflow
	// must (weakly) decrease with buffer size in every simulation series.
	for _, s := range r.Series {
		if !strings.HasPrefix(s.Name, "simulation") {
			continue
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+0.35 {
				t.Errorf("%s: overflow increased with buffer: %v", s.Name, s.Y)
				break
			}
		}
	}
	// Higher utilization must mean higher loss at the same buffer.
	var low, high []float64
	for _, s := range r.Series {
		if s.Name == "simulation util=0.4 (log10 P)" {
			low = s.Y
		}
		if s.Name == "simulation util=0.8 (log10 P)" {
			high = s.Y
		}
	}
	if low == nil || high == nil {
		t.Fatalf("missing utilization series: %v", seriesNames(r))
	}
	for i := range low {
		if high[i] < low[i]-0.2 {
			t.Errorf("util ordering violated at point %d: %v vs %v", i, high[i], low[i])
		}
	}
}

func seriesNames(r *Result) []string {
	var out []string
	for _, s := range r.Series {
		out = append(out, s.Name)
	}
	return out
}

func TestFig17ModelOrdering(t *testing.T) {
	r, err := sharedLab.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	var full, srd []float64
	for _, s := range r.Series {
		if strings.HasPrefix(s.Name, "SRD+LRD") {
			full = s.Y
		}
		if strings.HasPrefix(s.Name, "SRD only") {
			srd = s.Y
		}
	}
	if full == nil || srd == nil {
		t.Fatalf("missing series: %v", seriesNames(r))
	}
	// At the largest buffer the SRD-only model must underestimate loss
	// relative to the full model (log10 scale).
	last := len(full) - 1
	if srd[last] > full[last]+0.2 {
		t.Errorf("SRD-only (%v) does not decay faster than SRD+LRD (%v) at large b",
			srd[last], full[last])
	}
}

func TestFullScaleLabSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale lab in -short mode")
	}
	// Exercise the non-quick parameter branches on the cheap exhibits.
	lab := NewLab(Config{Seed: 500, TraceFrames: 1 << 16, Replications: 100})
	for _, id := range []string{"fig5", "fig7", "fig14"} {
		res, err := lab.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Series) == 0 {
			t.Errorf("%s: no series", id)
		}
	}
	m, err := lab.IModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.Attenuation <= 0 || m.Attenuation > 1 {
		t.Errorf("full-scale attenuation %v", m.Attenuation)
	}
}

func TestExtNorrosShapes(t *testing.T) {
	r, err := sharedLab.ExtNorros()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series: %v", seriesNames(r))
	}
	// Both curves decrease in b.
	for _, s := range r.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+0.3 {
				t.Errorf("%s not decreasing: %v", s.Name, s.Y)
				break
			}
		}
	}
}

func TestWriteData(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}}}
	r.AddNote("hello %d", 7)
	var buf bytes.Buffer
	if err := r.WriteData(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# x: t", "# note: hello 7", "# series: s", "1\t3", "2\t4"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteData output missing %q:\n%s", want, out)
		}
	}
}
