package experiments

import (
	"strings"
	"testing"
)

// fastLab shares fast-path artifacts across the smoke tests below.
var fastLab = NewLab(Config{Quick: true, Seed: 99, FastPath: true})

// hasFastNote reports whether the exhibit recorded the truncated-AR note.
func hasFastNote(notes []string) bool {
	for _, n := range notes {
		if strings.Contains(n, "fast path: truncated AR(") {
			return true
		}
	}
	return false
}

// TestFastPathFig14 checks that the IS twist search runs end to end on the
// truncated-AR fast path and reports it in the notes.
func TestFastPathFig14(t *testing.T) {
	r, err := fastLab.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if !hasFastNote(r.Notes) {
		t.Errorf("fast-path note missing from %v", r.Notes)
	}
	if len(r.Series) == 0 || len(r.Series[0].X) == 0 {
		t.Error("no twist-search series")
	}
}

// TestFastPathFig16 checks the overflow-vs-buffer exhibit still produces
// (weakly) decreasing simulation curves under the fast path.
func TestFastPathFig16(t *testing.T) {
	r, err := fastLab.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if !hasFastNote(r.Notes) {
		t.Errorf("fast-path note missing from %v", r.Notes)
	}
	for _, s := range r.Series {
		if !strings.HasPrefix(s.Name, "simulation") {
			continue
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+0.35 {
				t.Errorf("%s: overflow increased with buffer: %v", s.Name, s.Y)
				break
			}
		}
	}
}

// TestFastPathFig17 checks the model-comparison exhibit completes with the
// truncated variants substituted in.
func TestFastPathFig17(t *testing.T) {
	r, err := fastLab.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) == 0 {
		t.Error("no series")
	}
}
