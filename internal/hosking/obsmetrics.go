package hosking

import "vbrsim/internal/obs"

// RegisterMetrics exposes the cache's counters on r as live counter
// functions, read at scrape time. Safe to call more than once per
// registry; re-registration is a no-op returning the existing collectors
// (which read this cache — register each cache on its own registry).
func (c *PlanCache) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("vbrsim_plan_cache_hits_total",
		"Plan cache requests served from an existing entry.",
		func() float64 { return float64(c.Stats().Hits) })
	r.CounterFunc("vbrsim_plan_cache_misses_total",
		"Plan cache requests that ran the full Durbin-Levinson build.",
		func() float64 { return float64(c.Stats().Misses) })
	r.CounterFunc("vbrsim_plan_cache_evictions_total",
		"Ready plans dropped by the LRU cap.",
		func() float64 { return float64(c.Stats().Evictions) })
	r.CounterFunc("vbrsim_plan_cache_singleflight_waits_total",
		"Plan cache requests that waited on another caller's in-flight build.",
		func() float64 { return float64(c.Stats().SingleflightWaits) })
}
