package hosking

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/rng"
)

// The flat reversed-row plan must agree bit-for-bit with the historical
// ragged implementation: same tables, same conditional means, same paths
// from the same seed.
func TestFlatMatchesRaggedBitwise(t *testing.T) {
	model := acf.PaperComposite().Continuous()
	const n = 700
	flat, err := NewPlanOpts(model, n, PlanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ragged, err := NewRaggedPlan(model, n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if flat.CondVar(k) != ragged.CondVar(k) {
			t.Fatalf("CondVar differs at %d: %v vs %v", k, flat.CondVar(k), ragged.CondVar(k))
		}
		if flat.PhiRowSum(k) != ragged.PhiRowSum(k) {
			t.Fatalf("PhiRowSum differs at %d", k)
		}
		if flat.PartialCorr(k) != ragged.PartialCorr(k) {
			t.Fatalf("PartialCorr differs at %d", k)
		}
	}
	// Every coefficient, not just the diagonals.
	for k := 1; k < n; k++ {
		row := flat.row(k)
		for j := 1; j <= k; j++ {
			if row[k-j] != ragged.Coeff(k, j) {
				t.Fatalf("phi_{%d,%d} differs: %v vs %v", k, j, row[k-j], ragged.Coeff(k, j))
			}
		}
	}
	a := flat.Path(rng.New(99), n)
	b := ragged.Path(rng.New(99), n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paths diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Parallel construction must be bit-identical to serial for rows long
// enough to engage the chunked reductions (k-1 > reduceChunk).
func TestNewPlanWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("long-plan construction")
	}
	model := acf.FGN{H: 0.85}
	n := reduceChunk + 600 // forces multi-chunk rows at the tail
	serial, err := NewPlanOpts(model, n, PlanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		par, err := NewPlanOpts(model, n, PlanOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if serial.v[k] != par.v[k] || serial.phiSum[k] != par.phiSum[k] {
				t.Fatalf("workers=%d: tables differ at step %d", workers, k)
			}
		}
		for i := range serial.flat {
			if serial.flat[i] != par.flat[i] {
				t.Fatalf("workers=%d: phi differs at flat index %d", workers, i)
			}
		}
	}
}

// Below the chunk cutoff the new construction must reproduce the seed
// recursion exactly — the ragged reference IS the seed recursion, and this
// holds for the default (parallel-capable) NewPlan, not only Workers=1.
func TestDefaultNewPlanMatchesSeedBelowCutoff(t *testing.T) {
	model := acf.FGN{H: 0.9}
	const n = 512
	p, err := NewPlan(model, n)
	if err != nil {
		t.Fatal(err)
	}
	ragged, err := NewRaggedPlan(model, n)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Path(rng.New(7), n)
	b := ragged.Path(rng.New(7), n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paths diverge at %d", i)
		}
	}
}

// The truncated view must report an ACF error within the configured
// tolerance, and the error must be real: recomputing the AR-implied
// autocorrelation independently must agree with the reported bound.
func TestTruncateACFErrorBound(t *testing.T) {
	for _, tc := range []struct {
		name   string
		model  acf.Model
		acfTol float64
	}{
		{"fgn-0.9", acf.FGN{H: 0.9}, 0.05},
		{"fgn-0.7", acf.FGN{H: 0.7}, 0.01},
		{"composite", acf.PaperComposite().Continuous(), 0.05},
		{"exp", acf.Exponential{Lambda: 0.2}, 1e-4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := NewPlan(tc.model, 2048)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := plan.Truncate(TruncateOptions{Tol: 1e-3, ACFTol: tc.acfTol})
			if err != nil {
				t.Fatal(err)
			}
			if tr.MaxACFError() > tc.acfTol {
				t.Fatalf("reported ACF error %v exceeds tolerance %v", tr.MaxACFError(), tc.acfTol)
			}
			if tr.Order() < 1 || tr.Order() >= plan.Len() {
				t.Fatalf("implausible order %d", tr.Order())
			}
			// Independent check of the implied-ACF deviation: extend the
			// autocorrelation with the Yule-Walker recursion using the
			// natural coefficient order (different code path from
			// arExtensionError's reversed walk).
			p := tr.Order()
			ext := make([]float64, plan.Len())
			for k := 0; k <= p; k++ {
				ext[k] = plan.ACF(k)
			}
			var worst float64
			for k := p + 1; k < plan.Len(); k++ {
				var s float64
				for j := 1; j <= p; j++ {
					s += tr.row[p-j] * ext[k-j]
				}
				ext[k] = s
				if d := math.Abs(s - plan.ACF(k)); d > worst {
					worst = d
				}
			}
			if math.Abs(worst-tr.MaxACFError()) > 1e-12 {
				t.Fatalf("independent ACF error %v disagrees with reported %v", worst, tr.MaxACFError())
			}
			if worst > tc.acfTol {
				t.Fatalf("independent ACF error %v exceeds tolerance %v", worst, tc.acfTol)
			}
		})
	}
}

// A truncated path agrees bit-for-bit with the exact generator up to (and
// including) the truncation order, and a truncation whose order covers the
// whole requested path IS the exact generator.
func TestTruncatedPrefixBitIdentical(t *testing.T) {
	plan, err := NewPlan(acf.FGN{H: 0.8}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := plan.Truncate(TruncateOptions{Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	exact := plan.Path(rng.New(42), 1024)
	fast := tr.Path(rng.New(42), 1024)
	// One extra step matches too: step p uses the full row p in both modes.
	for k := 0; k <= tr.Order() && k < len(fast); k++ {
		if fast[k] != exact[k] {
			t.Fatalf("prefix diverges at %d (order %d)", k, tr.Order())
		}
	}
	diverged := false
	for k := tr.Order() + 1; k < len(fast); k++ {
		if fast[k] != exact[k] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("fast path never diverged from exact; truncation is a no-op")
	}
}

// The streaming truncated generator must reproduce Truncated.Generate
// bitwise while holding only an O(p) window, including far beyond the plan
// length.
func TestTruncatedGeneratorStreamsBeyondPlan(t *testing.T) {
	plan, err := NewPlan(acf.FGN{H: 0.8}, 512)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := plan.Truncate(TruncateOptions{Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // ~10x the plan length
	batch := tr.Path(rng.New(11), n)
	g := NewTruncatedGenerator(tr, rng.New(11))
	for i := 0; i < n; i++ {
		if x := g.Next(); x != batch[i] {
			t.Fatalf("stream diverges at %d", i)
		}
	}
	if g.Pos() != n {
		t.Fatalf("Pos = %d, want %d", g.Pos(), n)
	}
	g.Reset()
	g2 := NewTruncatedGenerator(tr, rng.New(11))
	// Note: Reset clears the path but not the rng; use a fresh source for
	// the bitwise comparison.
	_ = g
	for i := 0; i < 100; i++ {
		if g2.Next() != batch[i] {
			t.Fatalf("fresh stream diverges at %d", i)
		}
	}
}

// Statistical sanity: the truncated process still matches the target
// autocorrelation at short lags.
func TestTruncatedSampleACF(t *testing.T) {
	if testing.Short() {
		t.Skip("large sample")
	}
	model := acf.FGN{H: 0.8}
	plan, err := NewPlan(model, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := plan.Truncate(TruncateOptions{Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	x := tr.Path(rng.New(3), 200000)
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var c0 float64
	for _, v := range x {
		c0 += (v - mean) * (v - mean)
	}
	for _, lag := range []int{1, 5, 20} {
		var ck float64
		for i := lag; i < len(x); i++ {
			ck += (x[i] - mean) * (x[i-lag] - mean)
		}
		got := ck / c0
		want := model.At(lag)
		if math.Abs(got-want) > 0.03 {
			t.Errorf("sample ACF at lag %d: got %.4f want %.4f", lag, got, want)
		}
	}
}

func TestTruncateRejectsImpossibleTolerance(t *testing.T) {
	plan, err := NewPlan(acf.FGN{H: 0.95}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Truncate(TruncateOptions{Tol: 1e-12}); err == nil {
		t.Fatal("expected ErrNoTruncation for absurd tolerance on a short plan")
	}
}

// Cache: same model+length returns the identical plan pointer; distinct
// models or lengths do not; concurrent first requests build once.
func TestPlanCacheHitsAndSingleflight(t *testing.T) {
	c := NewPlanCache(8)
	modelA := acf.FGN{H: 0.8}
	p1, err := c.Get(modelA, 300)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(modelA, 300)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cache miss on identical (model, length)")
	}
	p3, err := c.Get(modelA, 301)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("different length returned same plan")
	}
	p4, err := c.Get(acf.FGN{H: 0.7}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("different model returned same plan")
	}
	// Two models that agree on the evaluated table share a plan.
	p5, err := c.Get(sliceModel(acf.Table(modelA, 299)), 300)
	if err != nil {
		t.Fatal(err)
	}
	if p5 != p1 {
		t.Fatal("table-equal model missed the cache")
	}

	// Singleflight: many goroutines racing on a cold key get one plan.
	c2 := NewPlanCache(8)
	var wg sync.WaitGroup
	plans := make([]*Plan, 16)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c2.Get(acf.FGN{H: 0.85}, 400)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(plans); i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent gets returned distinct plans")
		}
	}
}

// countingModel counts ACF evaluations; its pointer type is comparable, so
// repeat Gets must go through the identity fast path without re-evaluating.
type countingModel struct {
	base  acf.Model
	calls int
}

func (m *countingModel) At(k int) float64 {
	m.calls++
	return m.base.At(k)
}

func TestPlanCacheIdentityFastPath(t *testing.T) {
	c := NewPlanCache(8)
	m := &countingModel{base: acf.FGN{H: 0.8}}
	const n = 128
	p1, err := c.Get(m, n)
	if err != nil {
		t.Fatal(err)
	}
	if m.calls != n {
		t.Fatalf("cold Get evaluated the model %d times, want %d", m.calls, n)
	}
	p2, err := c.Get(m, n)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Fatal("identity hit returned a different plan")
	}
	if m.calls != n {
		t.Fatalf("warm Get re-evaluated the model (%d calls, want %d)", m.calls, n)
	}
	// A table-equal but distinct pointer is a new identity: it pays one
	// table evaluation, matches by fingerprint, and shares the plan.
	m2 := &countingModel{base: acf.FGN{H: 0.8}}
	p3, err := c.Get(m2, n)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("table-equal model missed the cache")
	}
	if m2.calls != n {
		t.Fatalf("fingerprint path evaluated %d times, want %d", m2.calls, n)
	}
	// ...and from then on it, too, hits by identity.
	if _, err := c.Get(m2, n); err != nil {
		t.Fatal(err)
	}
	if m2.calls != n {
		t.Fatalf("second Get through recorded identity re-evaluated (%d calls)", m2.calls)
	}
}

// wrapModel has a comparable struct type but may hold an unhashable dynamic
// value in its interface field — the acf.Composite shape that must NOT take
// the identity fast path (hashing it as a map key would panic).
type wrapModel struct{ inner acf.Model }

func (w wrapModel) At(k int) float64 { return w.inner.At(k) }

func TestPlanCacheUnhashableModel(t *testing.T) {
	c := NewPlanCache(8)
	m := wrapModel{inner: sliceModel(acf.Table(acf.FGN{H: 0.8}, 99))}
	p1, err := c.Get(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("unhashable model missed the fingerprint cache")
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := NewPlanCache(2)
	a, _ := c.Get(acf.FGN{H: 0.6}, 100)
	c.Get(acf.FGN{H: 0.7}, 100)
	c.Get(acf.FGN{H: 0.8}, 100) // evicts the LRU entry (H=0.6)
	if got := c.Len(); got != 2 {
		t.Fatalf("cache holds %d entries, cap 2", got)
	}
	a2, _ := c.Get(acf.FGN{H: 0.6}, 100)
	if a2 == a {
		t.Fatal("evicted entry still returned the old pointer")
	}
}

func TestPlanCacheErrorNotCached(t *testing.T) {
	c := NewPlanCache(4)
	bad := acf.PaperComposite() // raw composite is not positive definite
	if _, err := c.Get(bad, 200); err == nil {
		t.Fatal("expected non-PD error")
	}
	if c.Len() != 0 {
		t.Fatal("failed build left an entry behind")
	}
}

func TestPlanCacheDiskLayer(t *testing.T) {
	dir := t.TempDir()
	model := acf.FGN{H: 0.75}

	c1 := NewPlanCache(4)
	c1.SetDir(dir)
	p1, err := c1.Get(model, 300)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "plan-*.hplan"))
	if len(files) != 1 {
		t.Fatalf("expected one plan file, got %v", files)
	}

	// A fresh cache with the same dir loads from disk; the loaded plan must
	// generate bit-identical paths.
	c2 := NewPlanCache(4)
	c2.SetDir(dir)
	p2, err := c2.Get(model, 300)
	if err != nil {
		t.Fatal(err)
	}
	a := p1.Path(rng.New(5), 300)
	b := p2.Path(rng.New(5), 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("disk-loaded plan diverges at %d", i)
		}
	}

	// Corrupt file: fall back to a fresh build, no error.
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := NewPlanCache(4)
	c3.SetDir(dir)
	p3, err := c3.Get(model, 300)
	if err != nil {
		t.Fatal(err)
	}
	cpath := p3.Path(rng.New(5), 300)
	for i := range a {
		if a[i] != cpath[i] {
			t.Fatalf("rebuilt plan diverges at %d", i)
		}
	}
}
