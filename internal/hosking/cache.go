// Process-wide plan cache. Plan construction is O(n^2); the experiment
// pipelines and repeated Fit/Generate calls keep asking for the same
// (ACF model, length) plans. The cache is keyed by a fingerprint of the
// *evaluated* autocorrelation table — not the model value — so any two
// models that agree on the first n lags share a plan, and models carrying
// slices or closures need no comparability. Comparable model values
// additionally get an identity fast path so warm hits skip the O(n) table
// evaluation. Concurrent requests for the same plan are single-flighted:
// one goroutine builds, the rest wait.
//
// Because a hash key can collide, every hit is verified: the cached plan's
// autocorrelation table must match the requested model bitwise, otherwise
// the request falls through to a direct build (bypassing the cache).
//
// An optional disk layer reuses the binary plan serialization: with a
// directory configured, misses first try plan-<fingerprint>-<n>.hplan and
// successful builds are written back best-effort.
package hosking

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"

	"vbrsim/internal/acf"
	"vbrsim/internal/obs"
)

// DefaultCacheCap is the eviction cap of the shared cache: the number of
// distinct (model, length) plans kept in memory.
const DefaultCacheCap = 16

// Shared is the process-wide plan cache used by CachedPlan and, through it,
// by core.Model and the experiment pipelines.
var Shared = NewPlanCache(DefaultCacheCap)

// CachedPlan returns a plan for (model, n) from the shared process-wide
// cache, building and inserting it on a miss.
func CachedPlan(model acf.Model, n int) (*Plan, error) {
	return Shared.Get(model, n)
}

// CachedPlanCtx is CachedPlan with cancellation: both the wait on an
// in-flight build and the build itself observe ctx.
func CachedPlanCtx(ctx context.Context, model acf.Model, n int) (*Plan, error) {
	return Shared.GetCtx(ctx, model, n)
}

// CacheStats is a snapshot of a PlanCache's counters since construction.
type CacheStats struct {
	// Hits counts requests served from an existing entry (identity or
	// verified content match), including requests that waited for an
	// in-flight build of the same plan.
	Hits uint64
	// Misses counts requests that had to run the O(n^2) recursion: cold
	// keys and fingerprint-collision fallthroughs (which build uncached).
	Misses uint64
	// Evictions counts ready entries dropped by the LRU cap.
	Evictions uint64
	// SingleflightWaits counts requests that blocked on another caller's
	// in-flight build instead of duplicating it.
	SingleflightWaits uint64
}

// PlanCache is a bounded, single-flighted cache of Durbin–Levinson plans.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	dir     string // optional disk layer; "" disables
	tick    uint64 // LRU clock
	stats   CacheStats
	entries map[cacheKey]*cacheEntry
	// ident is an identity fast path: for comparable model values a repeat
	// Get skips the O(n) table evaluation and fingerprinting entirely.
	// Relies on acf.Model.At being pure, which the whole package assumes
	// (plans are immutable evaluations of the model).
	ident map[identKey]*cacheEntry
}

type cacheKey struct {
	fp uint64
	n  int
}

type identKey struct {
	model acf.Model
	n     int
}

type cacheEntry struct {
	ready chan struct{} // closed when plan/err are set
	plan  *Plan
	err   error
	used  uint64
}

// NewPlanCache returns a cache holding at most capacity ready plans.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		cap:     capacity,
		entries: make(map[cacheKey]*cacheEntry),
		ident:   make(map[identKey]*cacheEntry),
	}
}

// SetDir enables (non-empty) or disables (empty) the disk layer. Existing
// in-memory entries are unaffected.
func (c *PlanCache) SetDir(dir string) {
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
}

// Len returns the number of cached entries (including in-flight builds).
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters. Counters only ever grow;
// Purge does not reset them.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Purge drops every ready entry. In-flight builds complete and are kept.
func (c *PlanCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		select {
		case <-e.ready:
			delete(c.entries, k)
			c.dropIdentLocked(e)
		default:
		}
	}
}

// fingerprint hashes the IEEE-754 bits of the autocorrelation table plus
// the length with FNV-1a (64-bit).
func fingerprint(r []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(r)))
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	for _, x := range r {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		for _, c := range b {
			h = (h ^ uint64(c)) * prime64
		}
	}
	return h
}

// Get returns a plan for (model, n), building it at most once per key even
// under concurrent callers. The returned plan is shared: callers must treat
// it as read-only (which the Plan API already enforces).
//
// Repeat requests with a comparable model value (plain structs like acf.FGN)
// short-circuit through an identity map without re-evaluating the model;
// everything else pays one O(n) table evaluation and is matched by content.
func (c *PlanCache) Get(model acf.Model, n int) (*Plan, error) {
	return c.GetCtx(context.Background(), model, n)
}

// GetCtx is Get with cancellation: a caller waiting on another goroutine's
// in-flight build returns as soon as ctx is done, and a build started by
// this caller is aborted through the same context. When the shared build
// fails only because a *different* caller's context was canceled, the
// request is retried once so one aborted client cannot poison concurrent
// requests for the same plan (failed entries are dropped before waiters are
// released, so the retry starts a fresh build).
func (c *PlanCache) GetCtx(ctx context.Context, model acf.Model, n int) (*Plan, error) {
	// A span only when a tracer rides the context: the delta of the cache
	// counters across the call tells hit from miss from singleflight wait
	// without touching the lookup paths themselves.
	if tr := obs.TracerFrom(ctx); tr != nil {
		before := c.Stats()
		span := tr.Start("plan.acquire")
		plan, err := c.getRetry(ctx, model, n)
		after := c.Stats()
		attrs := map[string]any{
			"n":                  n,
			"hits":               after.Hits - before.Hits,
			"misses":             after.Misses - before.Misses,
			"singleflight_waits": after.SingleflightWaits - before.SingleflightWaits,
		}
		if err != nil {
			attrs["error"] = err.Error()
		}
		span.End(attrs)
		return plan, err
	}
	return c.getRetry(ctx, model, n)
}

func (c *PlanCache) getRetry(ctx context.Context, model acf.Model, n int) (*Plan, error) {
	plan, err := c.get(ctx, model, n)
	if err != nil && isContextErr(err) && ctx.Err() == nil {
		plan, err = c.get(ctx, model, n)
	}
	return plan, err
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// waitEntry blocks until the entry resolves or ctx is done, reporting
// whether this caller had to wait on an in-flight build.
func waitEntry(ctx context.Context, e *cacheEntry) (waited bool, err error) {
	select {
	case <-e.ready:
		return false, nil
	default:
	}
	select {
	case <-e.ready:
		return true, nil
	case <-ctx.Done():
		return true, ctx.Err()
	}
}

func (c *PlanCache) get(ctx context.Context, model acf.Model, n int) (*Plan, error) {
	if n <= 0 || n > MaxPlanLen {
		return NewPlanOptsCtx(ctx, model, n, PlanOptions{}) // let NewPlan produce the error
	}
	var ik identKey
	hasIdent := model != nil && hashableModel(model)
	if hasIdent {
		ik = identKey{model: model, n: n}
		c.mu.Lock()
		if e, ok := c.ident[ik]; ok {
			c.tick++
			e.used = c.tick
			c.mu.Unlock()
			waited, werr := waitEntry(ctx, e)
			if waited {
				c.noteSingleflightWait()
			}
			if werr != nil {
				return nil, werr
			}
			// Only successful builds stay in the identity map, but a build
			// can still fail after this entry was recorded dead — count the
			// hit only once the entry actually delivered a plan, so the
			// /metrics counters are not skewed by canceled waiters and
			// failed builds.
			if e.err == nil {
				c.noteHit()
			}
			return e.plan, e.err
		}
		c.mu.Unlock()
	}
	table := make([]float64, n)
	for k := range table {
		table[k] = model.At(k)
	}
	key := cacheKey{fp: fingerprint(table), n: n}

	c.mu.Lock()
	c.tick++
	if e, ok := c.entries[key]; ok {
		e.used = c.tick
		c.mu.Unlock()
		waited, werr := waitEntry(ctx, e)
		if waited {
			c.noteSingleflightWait()
		}
		if werr != nil {
			return nil, werr
		}
		if e.err != nil {
			return nil, e.err
		}
		if tablesEqual(e.plan.r, table) {
			// Verified content match: safe to record the identity shortcut.
			c.mu.Lock()
			c.stats.Hits++
			if hasIdent {
				c.ident[ik] = e
			}
			c.mu.Unlock()
			return e.plan, nil
		}
		// Fingerprint collision: different table, same hash. Build directly
		// without caching rather than evicting the legitimate occupant.
		c.noteMiss()
		return NewPlanOptsCtx(ctx, tableModel(table), n, PlanOptions{})
	}
	e := &cacheEntry{ready: make(chan struct{}), used: c.tick}
	c.entries[key] = e
	if hasIdent {
		c.ident[ik] = e
	}
	c.stats.Misses++
	c.evictLocked()
	dir := c.dir
	c.mu.Unlock()

	plan, err := c.build(ctx, table, n, dir, key)
	if err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.dropIdentLocked(e)
		c.mu.Unlock()
		e.err = err
		close(e.ready)
		return nil, err
	}
	e.plan = plan
	close(e.ready)
	return plan, nil
}

func (c *PlanCache) noteHit() {
	c.mu.Lock()
	c.stats.Hits++
	c.mu.Unlock()
}

func (c *PlanCache) noteSingleflightWait() {
	c.mu.Lock()
	c.stats.SingleflightWaits++
	c.mu.Unlock()
}

func (c *PlanCache) noteMiss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

// hashableModel reports whether the model value can be a map key. Type
// comparability is not enough: a comparable struct may carry an interface
// field whose dynamic value is a slice (acf.Composite does), and hashing
// such a value panics at runtime. Walk the value and reject anything the
// runtime hash would reject.
func hashableModel(m acf.Model) bool {
	return hashableValue(reflect.ValueOf(m))
}

func hashableValue(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Slice, reflect.Map, reflect.Func:
		return false
	case reflect.Interface:
		return v.IsNil() || hashableValue(v.Elem())
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if !hashableValue(v.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if !hashableValue(v.Index(i)) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// dropIdentLocked removes every identity mapping that points at e.
func (c *PlanCache) dropIdentLocked(e *cacheEntry) {
	for k, v := range c.ident {
		if v == e {
			delete(c.ident, k)
		}
	}
}

// build loads the plan from the disk layer when possible, otherwise runs
// NewPlan and writes the result back best-effort.
func (c *PlanCache) build(ctx context.Context, table []float64, n int, dir string, key cacheKey) (*Plan, error) {
	var path string
	if dir != "" {
		path = filepath.Join(dir, planFileName(key))
		if f, err := os.Open(path); err == nil {
			plan, rerr := ReadPlan(f)
			f.Close()
			if rerr == nil && plan.Len() == n && tablesEqual(plan.r, table) {
				return plan, nil
			}
			// Corrupt or mismatched file: fall through to a fresh build.
		}
	}
	plan, err := NewPlanOptsCtx(ctx, tableModel(table), n, PlanOptions{})
	if err != nil {
		return nil, err
	}
	if path != "" {
		savePlan(plan, path)
	}
	return plan, nil
}

// savePlan writes the plan via a temp file + rename so readers never see a
// partial file. Failures are ignored: the disk layer is an accelerator.
func savePlan(p *Plan, path string) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".plan-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := p.WriteTo(tmp); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}

func planFileName(key cacheKey) string {
	return fmt.Sprintf("plan-%016x-%d.hplan", key.fp, key.n)
}

// evictLocked drops least-recently-used ready entries until the cache is
// within capacity. In-flight builds are never evicted.
func (c *PlanCache) evictLocked() {
	for len(c.entries) > c.cap {
		var victim cacheKey
		var victimUsed uint64 = ^uint64(0)
		found := false
		for k, e := range c.entries {
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			if e.used < victimUsed {
				victim, victimUsed, found = k, e.used, true
			}
		}
		if !found {
			return
		}
		c.dropIdentLocked(c.entries[victim])
		delete(c.entries, victim)
		c.stats.Evictions++
	}
}

func tablesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// tableModel adapts an evaluated autocorrelation table back into an
// acf.Model so builds work from the already-evaluated values (one model
// evaluation per Get, not two).
type tableModel []float64

func (t tableModel) At(k int) float64 {
	if k < 0 || k >= len(t) {
		return 0
	}
	return t[k]
}
