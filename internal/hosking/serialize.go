// Plan serialization. Building a Durbin-Levinson plan costs O(n^2) time,
// which dominates setup for long queueing horizons; a serialized plan loads
// in O(n^2) bytes of sequential I/O instead. The format is a simple
// little-endian dump: magic, length, the autocorrelation, conditional
// variances, row sums, and the triangular phi table.
//
// The on-disk row order is the natural one (phi_{k,1} .. phi_{k,k}), as
// written by every version of this package; the in-memory reversed flat
// layout is converted on the fly through a single scratch row.
package hosking

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

var planMagic = [4]byte{'H', 'P', 'L', 'N'}

// WriteTo serializes the plan. It returns the number of bytes written.
func (p *Plan) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	if n, err := bw.Write(planMagic[:]); err != nil {
		return int64(n), err
	}
	written += 4
	if err := binary.Write(bw, binary.LittleEndian, uint64(p.n)); err != nil {
		return written, err
	}
	written += 8
	for _, s := range [][]float64{p.r, p.v, p.phiSum} {
		if err := binary.Write(bw, binary.LittleEndian, s); err != nil {
			return written, err
		}
		written += int64(8 * len(s))
	}
	scratch := make([]float64, p.n)
	for k := 1; k < p.n; k++ {
		row := p.row(k)
		nat := scratch[:k]
		for j := 1; j <= k; j++ {
			nat[j-1] = row[k-j] // phi_{k,j}
		}
		if err := binary.Write(bw, binary.LittleEndian, nat); err != nil {
			return written, err
		}
		written += int64(8 * k)
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadPlan deserializes a plan written by WriteTo.
func ReadPlan(r io.Reader) (*Plan, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != planMagic {
		return nil, errors.New("hosking: bad plan magic")
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n == 0 || n > MaxPlanLen {
		return nil, fmt.Errorf("hosking: implausible plan length %d", n)
	}
	p := &Plan{
		n:      int(n),
		r:      make([]float64, n),
		v:      make([]float64, n),
		phiSum: make([]float64, n),
		flat:   make([]float64, int(n)*(int(n)-1)/2),
	}
	for _, s := range [][]float64{p.r, p.v, p.phiSum} {
		if err := binary.Read(br, binary.LittleEndian, s); err != nil {
			return nil, err
		}
	}
	scratch := make([]float64, n)
	for k := 1; k < p.n; k++ {
		nat := scratch[:k]
		if err := binary.Read(br, binary.LittleEndian, nat); err != nil {
			return nil, err
		}
		row := p.row(k)
		for j := 1; j <= k; j++ {
			row[k-j] = nat[j-1]
		}
	}
	// Sanity: the stored quantities must describe a valid plan.
	if p.r[0] != 1 {
		return nil, errors.New("hosking: stored plan has r(0) != 1")
	}
	for k, v := range p.v {
		// The NaN check must be explicit: all comparisons with NaN are false.
		if math.IsNaN(v) || v <= 0 || v > 1 {
			return nil, fmt.Errorf("hosking: stored conditional variance %v at step %d out of (0,1]", v, k)
		}
	}
	return p, nil
}
