package hosking

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vbrsim/internal/acf"
)

// Stats: a cold Get is a miss, repeats are hits (identity or content), and
// the LRU cap produces evictions.
func TestPlanCacheStats(t *testing.T) {
	c := NewPlanCache(2)
	model := acf.FGN{H: 0.8}
	if _, err := c.Get(model, 200); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after cold get: %+v, want 1 miss, 0 hits", s)
	}
	// Identity hit.
	if _, err := c.Get(model, 200); err != nil {
		t.Fatal(err)
	}
	// Content hit: a different model value with the same evaluated table.
	if _, err := c.Get(sliceModel(acf.Table(model, 199)), 200); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("after warm gets: %+v, want 2 hits, 1 miss", s)
	}
	// Overflow the cap: two more distinct plans evict the oldest.
	c.Get(acf.FGN{H: 0.7}, 200)
	c.Get(acf.FGN{H: 0.6}, 200)
	s = c.Stats()
	if s.Misses != 3 {
		t.Fatalf("stats after fills: %+v, want 3 misses", s)
	}
	if s.Evictions == 0 {
		t.Fatalf("stats after overflowing cap 2 with 3 plans: %+v, want evictions > 0", s)
	}
}

// Singleflight waits are counted when a second caller blocks on an
// in-flight build of the same key.
func TestPlanCacheStatsSingleflightWait(t *testing.T) {
	c := NewPlanCache(4)
	model := acf.FGN{H: 0.85}
	const n = 4096 // several ms of Durbin-Levinson, plenty to land in-flight
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Get(model, n); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the builder to register its entry, then pile on.
	for c.Len() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	if _, err := c.Get(model, n); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits == 0 {
		t.Fatalf("stats %+v: the piled-on get should count as a hit", s)
	}
	// The wait counter is timing-dependent in principle, but a same-key get
	// issued while the entry exists and the O(n^2) build runs must block.
	if s.SingleflightWaits == 0 {
		t.Fatalf("stats %+v: expected a singleflight wait", s)
	}
}

// A waiter canceled while the build is in flight must not count as a cache
// hit: only requests that actually received a plan move the hit counter.
func TestPlanCacheCanceledWaiterNotCountedAsHit(t *testing.T) {
	c := NewPlanCache(4)
	model := acf.FGN{H: 0.85}
	const n = 4096 // several ms of Durbin-Levinson, plenty to land in-flight
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Get(model, n); err != nil {
			t.Error(err)
		}
	}()
	for c.Len() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.GetCtx(ctx, model, n); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	wg.Wait()
	if s := c.Stats(); s.Hits != 0 {
		t.Fatalf("stats %+v: canceled waiter must not count as a hit", s)
	}
	// A live caller after the build resolved is a hit as before.
	if _, err := c.Get(model, n); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("stats %+v: want exactly the post-resolve get counted", s)
	}
}

// A canceled context aborts the O(n^2) recursion itself.
func TestNewPlanCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewPlanOptsCtx(ctx, acf.FGN{H: 0.8}, 300, PlanOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A canceled build must not poison the cache: the failed entry is dropped
// and a later caller with a live context builds the plan normally.
func TestCacheGetCtxCanceledThenRecovers(t *testing.T) {
	c := NewPlanCache(4)
	model := acf.FGN{H: 0.8}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.GetCtx(ctx, model, 300); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	p, err := c.Get(model, 300)
	if err != nil {
		t.Fatalf("recovery get: %v", err)
	}
	if p == nil || p.Len() != 300 {
		t.Fatal("recovery get returned a bad plan")
	}
}
