// Package hosking implements Hosking's method (Durbin–Levinson conditional
// sampling) for generating exact sample paths of a stationary zero-mean
// unit-variance Gaussian process with an arbitrary autocorrelation function,
// as described in Section 2 of the paper.
//
// The regression coefficients phi_{k,j} and the conditional variances v_k
// depend only on the autocorrelation, not on the sampled path, so they are
// precomputed once into a Plan and shared — read-only — by any number of
// concurrent replications. This removes the dominant recurring cost of the
// paper's simulation loop (the paper notes that "the generation of self
// similar traffic using Hosking's method is computationally quite
// demanding").
//
// The Plan also exposes the per-step conditional means and variances, which
// is exactly what the importance-sampling likelihood ratios of Appendix B
// need (eqs. 35-48).
//
// Memory layout: the triangular phi table is a single flat backing array.
// Row k (k = 1..n-1) lives at offset k*(k-1)/2 and stores the coefficients
// in reversed order, row[i] = phi_{k,k-i}, so that the conditional mean
// m_k = sum_j phi_{k,j} x_{k-j} becomes a unit-stride dot product of row
// with the history x[0..k-1]. One allocation replaces n ragged rows and
// both operands of the hot dot product walk memory in the same direction.
package hosking

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"vbrsim/internal/acf"
	"vbrsim/internal/rng"
)

// ErrNotPositiveDefinite is returned when the supplied autocorrelation is not
// a valid (positive-definite) correlation function for the requested length.
var ErrNotPositiveDefinite = errors.New("hosking: autocorrelation is not positive definite")

// MaxPlanLen bounds plan construction and deserialization. A plan of length
// n stores n*(n-1)/2 coefficients; 1<<17 steps is ~64 GiB of phi table, far
// beyond practical. Longer horizons should use the Truncated fast path,
// which can generate paths of any length from a moderate plan.
const MaxPlanLen = 1 << 17

// reduceChunk is the block size for the chunked inner-loop reductions used
// by plan construction. Rows no longer than reduceChunk are reduced with
// the plain serial loop in the historical summation order, so every plan of
// length <= reduceChunk+1 is bit-identical to the original serial
// implementation. Longer rows use fixed-size chunk partials combined in a
// deterministic order, which makes the result independent of the worker
// count (serial and parallel construction agree bitwise) at the cost of a
// one-time reassociation relative to the pre-chunking code.
const reduceChunk = 8192

// Plan holds the precomputed Durbin–Levinson state for generating paths of
// length n. A Plan is immutable after construction and safe for concurrent
// use by multiple goroutines.
type Plan struct {
	n      int
	r      []float64 // r[k] = autocorrelation at lag k, 0..n-1
	flat   []float64 // reversed-row triangle: row k at flat[k*(k-1)/2:], row[i] = phi_{k,k-i}
	v      []float64 // v[k] = conditional variance of X_k given X_0..X_{k-1}
	phiSum []float64 // phiSum[k] = sum_j phi_{k,j}; 0 at k = 0
}

// rowOffset returns the index of row k inside the flat triangle.
func rowOffset(k int) int { return k * (k - 1) / 2 }

// row returns the reversed coefficient row for step k: row[i] = phi_{k,k-i}.
func (p *Plan) row(k int) []float64 {
	off := rowOffset(k)
	return p.flat[off : off+k]
}

// PlanOptions tunes plan construction. The zero value selects defaults.
type PlanOptions struct {
	// Workers is the number of goroutines used for the O(k) inner loops of
	// rows longer than the chunk cutoff. 0 means GOMAXPROCS. 1 forces the
	// serial path. The result is bit-identical for every worker count.
	Workers int
}

// NewPlan runs the Durbin–Levinson recursion for the given autocorrelation
// model up to length n with default options. It returns
// ErrNotPositiveDefinite (wrapped with the offending lag) if any partial
// correlation falls outside (-1, 1).
func NewPlan(model acf.Model, n int) (*Plan, error) {
	return NewPlanOpts(model, n, PlanOptions{})
}

// NewPlanOpts is NewPlan with explicit construction options.
func NewPlanOpts(model acf.Model, n int, opt PlanOptions) (*Plan, error) {
	return NewPlanOptsCtx(context.Background(), model, n, opt)
}

// ctxCheckRows is how many Durbin–Levinson rows run between cancellation
// checks during plan construction.
const ctxCheckRows = 64

// NewPlanOptsCtx is NewPlanOpts with cancellation: plan construction is
// O(n^2) and a server request that built it may be gone long before it
// finishes, so the row loop polls ctx every ctxCheckRows rows and returns
// ctx.Err() when the context is done.
func NewPlanOptsCtx(ctx context.Context, model acf.Model, n int, opt PlanOptions) (*Plan, error) {
	if n <= 0 {
		return nil, errors.New("hosking: non-positive length")
	}
	if n > MaxPlanLen {
		return nil, fmt.Errorf("hosking: plan length %d exceeds limit %d (use the Truncated fast path for long horizons)", n, MaxPlanLen)
	}
	p := &Plan{
		n:      n,
		r:      make([]float64, n),
		flat:   make([]float64, n*(n-1)/2),
		v:      make([]float64, n),
		phiSum: make([]float64, n),
	}
	for k := range p.r {
		p.r[k] = model.At(k)
	}
	if p.r[0] != 1 {
		return nil, errors.New("hosking: model.At(0) must be 1")
	}
	p.v[0] = 1
	if n == 1 {
		return p, nil
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var pool *planPool
	if workers > 1 && n-1 > reduceChunk {
		pool = newPlanPool(workers)
		defer pool.close()
	}
	var partials []float64
	if n-1 > reduceChunk {
		partials = make([]float64, (n+reduceChunk-1)/reduceChunk)
	}

	for k := 1; k < n; k++ {
		if k%ctxCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		prev := p.flat[rowOffset(k-1) : rowOffset(k-1)+k-1] // reversed row k-1
		row := p.flat[rowOffset(k) : rowOffset(k)+k]        // reversed row k
		m := k - 1                                          // inner-loop length

		// d_k = r(k) - sum_{j=1}^{k-1} phi_{k-1,j} r(k-j). In the reversed
		// layout the historical term order (j ascending) is i descending
		// with term prev[i]*r[i+1].
		var d float64
		if m <= reduceChunk {
			d = p.r[k]
			for i := m - 1; i >= 0; i-- {
				d -= prev[i] * p.r[i+1]
			}
		} else {
			chunks := (m + reduceChunk - 1) / reduceChunk
			runChunks(pool, chunks, func(c int) {
				lo, hi := c*reduceChunk, (c+1)*reduceChunk
				if hi > m {
					hi = m
				}
				var s float64
				for i := hi - 1; i >= lo; i-- {
					s += prev[i] * p.r[i+1]
				}
				partials[c] = s
			})
			d = p.r[k]
			for c := chunks - 1; c >= 0; c-- {
				d -= partials[c]
			}
		}
		phiKK := d / p.v[k-1]
		if math.Abs(phiKK) >= 1 || math.IsNaN(phiKK) {
			return nil, fmt.Errorf("%w: partial correlation %v at lag %d", ErrNotPositiveDefinite, phiKK, k)
		}
		row[0] = phiKK // phi_{k,k}

		// Row update phi_{k,j} = phi_{k-1,j} - phi_{k,k} phi_{k-1,k-j}:
		// reversed, row[i] = prev[i-1] - phiKK*prev[k-1-i] for i = 1..k-1.
		// Elementwise, so chunk order is irrelevant bitwise. The row sum is
		// accumulated in the historical order (reversed-descending).
		var s float64
		if m <= reduceChunk {
			for i := 1; i < k; i++ {
				row[i] = prev[i-1] - phiKK*prev[k-1-i]
			}
			for i := k - 1; i >= 0; i-- {
				s += row[i]
			}
		} else {
			chunks := (k + reduceChunk - 1) / reduceChunk
			runChunks(pool, chunks, func(c int) {
				lo, hi := c*reduceChunk, (c+1)*reduceChunk
				if hi > k {
					hi = k
				}
				start := lo
				if start == 0 {
					start = 1 // row[0] already holds phiKK
				}
				for i := start; i < hi; i++ {
					row[i] = prev[i-1] - phiKK*prev[k-1-i]
				}
				var ps float64
				for i := hi - 1; i >= lo; i-- {
					ps += row[i]
				}
				partials[c] = ps
			})
			for c := chunks - 1; c >= 0; c-- {
				s += partials[c]
			}
		}
		p.phiSum[k] = s
		p.v[k] = p.v[k-1] * (1 - phiKK*phiKK)
	}
	return p, nil
}

// planPool is a fixed set of workers that execute chunk bodies for the
// duration of one NewPlan call. Chunk results are combined by the caller in
// a deterministic order, so the pool only provides parallelism, never
// ordering.
type planPool struct {
	tasks chan poolTask
	wg    sync.WaitGroup
}

type poolTask struct {
	body func(int)
	c    int
	done *sync.WaitGroup
}

func newPlanPool(workers int) *planPool {
	p := &planPool{tasks: make(chan poolTask, 2*workers)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.body(t.c)
				t.done.Done()
			}
		}()
	}
	return p
}

func (p *planPool) run(chunks int, body func(int)) {
	var done sync.WaitGroup
	done.Add(chunks)
	for c := 0; c < chunks; c++ {
		p.tasks <- poolTask{body: body, c: c, done: &done}
	}
	done.Wait()
}

func (p *planPool) close() {
	close(p.tasks)
	p.wg.Wait()
}

// runChunks executes body(c) for c in [0, chunks), on the pool when one is
// available, inline otherwise. Bodies write disjoint state; execution order
// does not affect the result.
func runChunks(pool *planPool, chunks int, body func(int)) {
	if pool == nil {
		for c := 0; c < chunks; c++ {
			body(c)
		}
		return
	}
	pool.run(chunks, body)
}

// PhiRowSum returns sum_{j=1}^{k} phi_{k,j}, the sensitivity of the
// conditional mean to a constant shift of the history. It is what the
// importance-sampling likelihood ratio of Appendix B needs: shifting the
// whole history by m* shifts the conditional mean by m* * PhiRowSum(k).
func (p *Plan) PhiRowSum(k int) float64 {
	if k <= 0 || k >= p.n {
		return 0
	}
	return p.phiSum[k]
}

// Len returns the maximum path length the plan supports.
func (p *Plan) Len() int { return p.n }

// ACF returns the autocorrelation value the plan was built from at lag k.
func (p *Plan) ACF(k int) float64 {
	if k < 0 || k >= p.n {
		return 0
	}
	return p.r[k]
}

// CondVar returns v_k, the variance of X_k conditioned on X_0..X_{k-1}.
func (p *Plan) CondVar(k int) float64 { return p.v[k] }

// PartialCorr returns the k-th partial correlation phi_{k,k} (k >= 1).
func (p *Plan) PartialCorr(k int) float64 {
	if k <= 0 || k >= p.n {
		return 0
	}
	return p.flat[rowOffset(k)]
}

// CondMean returns m_k = sum_{j=1}^{k} phi_{k,j} x_{k-j}, the mean of X_k
// conditioned on the history x[0..k-1]. For k == 0 it returns 0.
func (p *Plan) CondMean(k int, x []float64) float64 {
	if k == 0 {
		return 0
	}
	row := p.row(k)
	x = x[:k]
	// Descending i reproduces the historical term order (j = 1..k over the
	// natural layout) bit-for-bit while both operands stay unit-stride.
	var m float64
	for i := k - 1; i >= 0; i-- {
		m += row[i] * x[i]
	}
	return m
}

// Generate fills out with one sample path of the process, using r as the
// randomness source. len(out) must not exceed the plan length.
func (p *Plan) Generate(r *rng.Source, out []float64) {
	if len(out) > p.n {
		panic("hosking: requested path longer than plan")
	}
	for k := range out {
		m := p.CondMean(k, out[:k])
		out[k] = m + math.Sqrt(p.v[k])*r.Norm()
	}
}

// Path allocates and returns a fresh sample path of length n (n <= plan
// length).
func (p *Plan) Path(r *rng.Source, n int) []float64 {
	out := make([]float64, n)
	p.Generate(r, out)
	return out
}

// ConditionalPath generates a continuation of length n given an observed
// prefix: the returned slice holds X_{len(observed)} .. X_{len(observed)+n-1}
// drawn from the process law conditioned on the observations. This is the
// natural forecasting/conditional-simulation use of the Durbin-Levinson
// state: the plan's regression coefficients already encode the conditional
// means and variances at every step. len(observed)+n must not exceed the
// plan length.
func (p *Plan) ConditionalPath(r *rng.Source, observed []float64, n int) []float64 {
	m := len(observed)
	if m+n > p.n {
		panic("hosking: conditional path exceeds plan length")
	}
	hist := make([]float64, m, m+n)
	copy(hist, observed)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		k := m + i
		mean := p.CondMean(k, hist)
		x := mean + math.Sqrt(p.v[k])*r.Norm()
		hist = append(hist, x)
		out[i] = x
	}
	return out
}

// Forecast returns the conditional means E[X_k | observed] for the next n
// steps (the minimum-MSE linear predictor path), along with the conditional
// standard deviations.
func (p *Plan) Forecast(observed []float64, n int) (mean, std []float64) {
	m := len(observed)
	if m+n > p.n {
		panic("hosking: forecast exceeds plan length")
	}
	mean = make([]float64, n)
	std = make([]float64, n)
	hist := make([]float64, m, m+n)
	copy(hist, observed)
	for i := 0; i < n; i++ {
		k := m + i
		mu := p.CondMean(k, hist)
		mean[i] = mu
		// Multi-step prediction error variance compounds; for the one-step
		// tree we report the innovation std of each step given the
		// *predicted* history, which lower-bounds the true multi-step
		// uncertainty and equals it at i = 0.
		std[i] = math.Sqrt(p.v[k])
		hist = append(hist, mu)
	}
	return mean, std
}

// Generator is a streaming view of one sample path: each Next call extends
// the path by one step. The history buffer is preallocated to the plan
// length, so a full path costs no per-step allocations. It is bound to a
// single goroutine.
type Generator struct {
	plan *Plan
	rng  *rng.Source
	x    []float64
}

// NewGenerator returns a streaming generator over the plan.
func NewGenerator(plan *Plan, r *rng.Source) *Generator {
	return &Generator{plan: plan, rng: r, x: make([]float64, 0, plan.n)}
}

// Next returns the next sample of the path. It panics when the plan length
// is exhausted.
func (g *Generator) Next() float64 {
	k := len(g.x)
	if k >= g.plan.n {
		panic("hosking: generator exhausted plan length")
	}
	m := g.plan.CondMean(k, g.x)
	v := g.plan.v[k]
	x := m + math.Sqrt(v)*g.rng.Norm()
	g.x = append(g.x, x)
	return x
}

// Pos returns how many samples have been generated so far.
func (g *Generator) Pos() int { return len(g.x) }

// History returns the path generated so far. The caller must not modify it.
func (g *Generator) History() []float64 { return g.x }

// Reset discards the path so the generator can produce a fresh replication.
func (g *Generator) Reset() { g.x = g.x[:0] }
