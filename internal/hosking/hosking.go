// Package hosking implements Hosking's method (Durbin–Levinson conditional
// sampling) for generating exact sample paths of a stationary zero-mean
// unit-variance Gaussian process with an arbitrary autocorrelation function,
// as described in Section 2 of the paper.
//
// The regression coefficients phi_{k,j} and the conditional variances v_k
// depend only on the autocorrelation, not on the sampled path, so they are
// precomputed once into a Plan and shared — read-only — by any number of
// concurrent replications. This removes the dominant recurring cost of the
// paper's simulation loop (the paper notes that "the generation of self
// similar traffic using Hosking's method is computationally quite
// demanding").
//
// The Plan also exposes the per-step conditional means and variances, which
// is exactly what the importance-sampling likelihood ratios of Appendix B
// need (eqs. 35-48).
package hosking

import (
	"errors"
	"fmt"
	"math"

	"vbrsim/internal/acf"
	"vbrsim/internal/rng"
)

// ErrNotPositiveDefinite is returned when the supplied autocorrelation is not
// a valid (positive-definite) correlation function for the requested length.
var ErrNotPositiveDefinite = errors.New("hosking: autocorrelation is not positive definite")

// Plan holds the precomputed Durbin–Levinson state for generating paths of
// length n. A Plan is immutable after construction and safe for concurrent
// use by multiple goroutines.
type Plan struct {
	n      int
	r      []float64   // r[k] = autocorrelation at lag k, 0..n-1
	phi    [][]float64 // phi[k][j-1] = phi_{k,j}, j = 1..k, for k = 1..n-1
	v      []float64   // v[k] = conditional variance of X_k given X_0..X_{k-1}
	phiSum []float64   // phiSum[k] = sum_j phi_{k,j}; 0 at k = 0
}

// NewPlan runs the Durbin–Levinson recursion for the given autocorrelation
// model up to length n. It returns ErrNotPositiveDefinite (wrapped with the
// offending lag) if any partial correlation falls outside (-1, 1).
func NewPlan(model acf.Model, n int) (*Plan, error) {
	if n <= 0 {
		return nil, errors.New("hosking: non-positive length")
	}
	p := &Plan{
		n:      n,
		r:      make([]float64, n),
		phi:    make([][]float64, n),
		v:      make([]float64, n),
		phiSum: make([]float64, n),
	}
	for k := range p.r {
		p.r[k] = model.At(k)
	}
	if p.r[0] != 1 {
		return nil, errors.New("hosking: model.At(0) must be 1")
	}
	p.v[0] = 1
	if n == 1 {
		return p, nil
	}
	prev := make([]float64, 0, n)
	for k := 1; k < n; k++ {
		// d_k = r(k) - sum_{j=1}^{k-1} phi_{k-1,j} r(k-j)
		d := p.r[k]
		for j := 1; j < k; j++ {
			d -= prev[j-1] * p.r[k-j]
		}
		phiKK := d / p.v[k-1]
		if math.Abs(phiKK) >= 1 || math.IsNaN(phiKK) {
			return nil, fmt.Errorf("%w: partial correlation %v at lag %d", ErrNotPositiveDefinite, phiKK, k)
		}
		row := make([]float64, k)
		for j := 1; j < k; j++ {
			row[j-1] = prev[j-1] - phiKK*prev[k-1-j]
		}
		row[k-1] = phiKK
		p.phi[k] = row
		p.v[k] = p.v[k-1] * (1 - phiKK*phiKK)
		var s float64
		for _, c := range row {
			s += c
		}
		p.phiSum[k] = s
		prev = row
	}
	return p, nil
}

// PhiRowSum returns sum_{j=1}^{k} phi_{k,j}, the sensitivity of the
// conditional mean to a constant shift of the history. It is what the
// importance-sampling likelihood ratio of Appendix B needs: shifting the
// whole history by m* shifts the conditional mean by m* * PhiRowSum(k).
func (p *Plan) PhiRowSum(k int) float64 {
	if k <= 0 || k >= p.n {
		return 0
	}
	return p.phiSum[k]
}

// Len returns the maximum path length the plan supports.
func (p *Plan) Len() int { return p.n }

// ACF returns the autocorrelation value the plan was built from at lag k.
func (p *Plan) ACF(k int) float64 {
	if k < 0 || k >= p.n {
		return 0
	}
	return p.r[k]
}

// CondVar returns v_k, the variance of X_k conditioned on X_0..X_{k-1}.
func (p *Plan) CondVar(k int) float64 { return p.v[k] }

// PartialCorr returns the k-th partial correlation phi_{k,k} (k >= 1).
func (p *Plan) PartialCorr(k int) float64 {
	if k <= 0 || k >= p.n {
		return 0
	}
	return p.phi[k][k-1]
}

// CondMean returns m_k = sum_{j=1}^{k} phi_{k,j} x_{k-j}, the mean of X_k
// conditioned on the history x[0..k-1]. For k == 0 it returns 0.
func (p *Plan) CondMean(k int, x []float64) float64 {
	if k == 0 {
		return 0
	}
	row := p.phi[k]
	var m float64
	for j := 1; j <= k; j++ {
		m += row[j-1] * x[k-j]
	}
	return m
}

// Generate fills out with one sample path of the process, using r as the
// randomness source. len(out) must not exceed the plan length.
func (p *Plan) Generate(r *rng.Source, out []float64) {
	if len(out) > p.n {
		panic("hosking: requested path longer than plan")
	}
	for k := range out {
		m := p.CondMean(k, out[:k])
		out[k] = m + math.Sqrt(p.v[k])*r.Norm()
	}
}

// Path allocates and returns a fresh sample path of length n (n <= plan
// length).
func (p *Plan) Path(r *rng.Source, n int) []float64 {
	out := make([]float64, n)
	p.Generate(r, out)
	return out
}

// ConditionalPath generates a continuation of length n given an observed
// prefix: the returned slice holds X_{len(observed)} .. X_{len(observed)+n-1}
// drawn from the process law conditioned on the observations. This is the
// natural forecasting/conditional-simulation use of the Durbin-Levinson
// state: the plan's regression coefficients already encode the conditional
// means and variances at every step. len(observed)+n must not exceed the
// plan length.
func (p *Plan) ConditionalPath(r *rng.Source, observed []float64, n int) []float64 {
	m := len(observed)
	if m+n > p.n {
		panic("hosking: conditional path exceeds plan length")
	}
	hist := make([]float64, m, m+n)
	copy(hist, observed)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		k := m + i
		mean := p.CondMean(k, hist)
		x := mean + math.Sqrt(p.v[k])*r.Norm()
		hist = append(hist, x)
		out[i] = x
	}
	return out
}

// Forecast returns the conditional means E[X_k | observed] for the next n
// steps (the minimum-MSE linear predictor path), along with the conditional
// standard deviations.
func (p *Plan) Forecast(observed []float64, n int) (mean, std []float64) {
	m := len(observed)
	if m+n > p.n {
		panic("hosking: forecast exceeds plan length")
	}
	mean = make([]float64, n)
	std = make([]float64, n)
	hist := make([]float64, m, m+n)
	copy(hist, observed)
	for i := 0; i < n; i++ {
		k := m + i
		mu := p.CondMean(k, hist)
		mean[i] = mu
		// Multi-step prediction error variance compounds; for the one-step
		// tree we report the innovation std of each step given the
		// *predicted* history, which lower-bounds the true multi-step
		// uncertainty and equals it at i = 0.
		std[i] = math.Sqrt(p.v[k])
		hist = append(hist, mu)
	}
	return mean, std
}

// Generator is a streaming view of one sample path: each Next call extends
// the path by one step. It is bound to a single goroutine.
type Generator struct {
	plan *Plan
	rng  *rng.Source
	x    []float64
}

// NewGenerator returns a streaming generator over the plan.
func NewGenerator(plan *Plan, r *rng.Source) *Generator {
	return &Generator{plan: plan, rng: r, x: make([]float64, 0, plan.n)}
}

// Next returns the next sample of the path. It panics when the plan length
// is exhausted.
func (g *Generator) Next() float64 {
	k := len(g.x)
	if k >= g.plan.n {
		panic("hosking: generator exhausted plan length")
	}
	m := g.plan.CondMean(k, g.x)
	v := g.plan.v[k]
	x := m + math.Sqrt(v)*g.rng.Norm()
	g.x = append(g.x, x)
	return x
}

// Pos returns how many samples have been generated so far.
func (g *Generator) Pos() int { return len(g.x) }

// History returns the path generated so far. The caller must not modify it.
func (g *Generator) History() []float64 { return g.x }

// Reset discards the path so the generator can produce a fresh replication.
func (g *Generator) Reset() { g.x = g.x[:0] }
