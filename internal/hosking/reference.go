// Reference implementation of the pre-flat ragged plan layout. It exists so
// the flat-layout plan can be checked bit-for-bit against the historical
// recursion, and so the FlatVsRagged ablation benchmark has a faithful
// baseline to measure against. It is not used on any production path.
package hosking

import (
	"errors"
	"fmt"
	"math"

	"vbrsim/internal/acf"
	"vbrsim/internal/rng"
)

// RaggedPlan is the historical plan representation: one heap-allocated row
// per step, coefficients in natural order phi[k][j-1] = phi_{k,j}.
type RaggedPlan struct {
	n      int
	r      []float64
	phi    [][]float64
	v      []float64
	phiSum []float64
}

// NewRaggedPlan runs the original serial Durbin–Levinson recursion exactly
// as the seed implementation did.
func NewRaggedPlan(model acf.Model, n int) (*RaggedPlan, error) {
	if n <= 0 {
		return nil, errors.New("hosking: non-positive length")
	}
	p := &RaggedPlan{
		n:      n,
		r:      make([]float64, n),
		phi:    make([][]float64, n),
		v:      make([]float64, n),
		phiSum: make([]float64, n),
	}
	for k := range p.r {
		p.r[k] = model.At(k)
	}
	if p.r[0] != 1 {
		return nil, errors.New("hosking: model.At(0) must be 1")
	}
	p.v[0] = 1
	if n == 1 {
		return p, nil
	}
	prev := make([]float64, 0, n)
	for k := 1; k < n; k++ {
		d := p.r[k]
		for j := 1; j < k; j++ {
			d -= prev[j-1] * p.r[k-j]
		}
		phiKK := d / p.v[k-1]
		if math.Abs(phiKK) >= 1 || math.IsNaN(phiKK) {
			return nil, fmt.Errorf("%w: partial correlation %v at lag %d", ErrNotPositiveDefinite, phiKK, k)
		}
		row := make([]float64, k)
		for j := 1; j < k; j++ {
			row[j-1] = prev[j-1] - phiKK*prev[k-1-j]
		}
		row[k-1] = phiKK
		p.phi[k] = row
		p.v[k] = p.v[k-1] * (1 - phiKK*phiKK)
		var s float64
		for _, c := range row {
			s += c
		}
		p.phiSum[k] = s
		prev = row
	}
	return p, nil
}

// Len returns the maximum path length the plan supports.
func (p *RaggedPlan) Len() int { return p.n }

// CondVar returns v_k.
func (p *RaggedPlan) CondVar(k int) float64 { return p.v[k] }

// PhiRowSum returns sum_j phi_{k,j}.
func (p *RaggedPlan) PhiRowSum(k int) float64 {
	if k <= 0 || k >= p.n {
		return 0
	}
	return p.phiSum[k]
}

// PartialCorr returns phi_{k,k}.
func (p *RaggedPlan) PartialCorr(k int) float64 {
	if k <= 0 || k >= p.n {
		return 0
	}
	return p.phi[k][k-1]
}

// Coeff returns phi_{k,j} (1 <= j <= k).
func (p *RaggedPlan) Coeff(k, j int) float64 { return p.phi[k][j-1] }

// CondMean returns the conditional mean of X_k given x[0..k-1], summed in
// the historical term order.
func (p *RaggedPlan) CondMean(k int, x []float64) float64 {
	if k == 0 {
		return 0
	}
	row := p.phi[k]
	var m float64
	for j := 1; j <= k; j++ {
		m += row[j-1] * x[k-j]
	}
	return m
}

// Generate fills out with one sample path.
func (p *RaggedPlan) Generate(r *rng.Source, out []float64) {
	if len(out) > p.n {
		panic("hosking: requested path longer than plan")
	}
	for k := range out {
		m := p.CondMean(k, out[:k])
		out[k] = m + math.Sqrt(p.v[k])*r.Norm()
	}
}

// Path allocates and returns a fresh sample path of length n.
func (p *RaggedPlan) Path(r *rng.Source, n int) []float64 {
	out := make([]float64, n)
	p.Generate(r, out)
	return out
}
