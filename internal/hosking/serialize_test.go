package hosking

import (
	"bytes"
	"strings"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/rng"
)

func TestPlanRoundTrip(t *testing.T) {
	orig, err := NewPlan(acf.PaperComposite().Continuous(), 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("length %d vs %d", got.Len(), orig.Len())
	}
	// Identical plans generate identical paths from identical seeds.
	a := orig.Path(rng.New(5), 300)
	b := got.Path(rng.New(5), 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paths diverge at %d", i)
		}
	}
	// Internal tables identical.
	for k := 0; k < 300; k++ {
		if got.CondVar(k) != orig.CondVar(k) || got.PhiRowSum(k) != orig.PhiRowSum(k) {
			t.Fatalf("tables differ at step %d", k)
		}
	}
}

func TestReadPlanRejectsCorruption(t *testing.T) {
	orig, err := NewPlan(acf.FGN{H: 0.8}, 50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadPlan(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadPlan(bytes.NewReader(good[:20])); err == nil {
		t.Error("truncated plan accepted")
	}
	// Corrupt a conditional variance to a negative value.
	bad := append([]byte(nil), good...)
	// v starts after magic(4) + n(8) + r(50*8).
	off := 4 + 8 + 50*8
	for i := 0; i < 8; i++ {
		bad[off+i] = 0xFF // NaN-ish garbage
	}
	if _, err := ReadPlan(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt variance accepted")
	}
	// Implausible length.
	huge := append([]byte(nil), good[:12]...)
	for i := 4; i < 12; i++ {
		huge[i] = 0xFF
	}
	if _, err := ReadPlan(bytes.NewReader(huge)); err == nil {
		t.Error("absurd length accepted")
	}
}

func BenchmarkPlanSerializeRoundTrip(b *testing.B) {
	plan, err := NewPlan(acf.PaperComposite().Continuous(), 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := plan.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadPlan(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
