// Truncated-AR(p) fast generation. Hosking's exact method regresses every
// step on its full history, which makes path generation O(n^2). For the
// long-range-dependent models of the paper the partial correlations
// phi_{k,k} decay like a power law, so past some order p the remaining
// coefficients move the conditional law by less than any tolerance of
// interest. Freezing the Durbin–Levinson coefficient row at order p turns
// the generator into a stationary AR(p): steps beyond p cost O(p) each and
// the process can be extended to ANY length — including the paper's full
// 238,626-frame trace — from a plan of moderate length.
//
// The approximation is quantified, not assumed: the AR(p) model implied by
// the frozen row reproduces the target autocorrelation exactly up to lag p
// (the row solves the Yule–Walker equations), and its extension beyond lag
// p is computed and compared against the plan's table. The measured error
// is exposed through MaxACFError — and enforced when TruncateOptions.ACFTol
// is set — so callers (core.Fit, the experiment pipelines) can choose exact
// vs. fast per use with a known ACF-error figure.
package hosking

import (
	"errors"
	"fmt"
	"math"

	"vbrsim/internal/rng"
)

// ErrNoTruncation is returned when no truncation order within the plan
// satisfies the requested tolerance (the partial correlations have not
// decayed enough at the plan length).
var ErrNoTruncation = errors.New("hosking: no truncation order within plan meets the tolerance")

// TruncateOptions tunes truncation. The zero value selects defaults.
type TruncateOptions struct {
	// Tol is the partial-correlation cutoff: the truncation order is placed
	// after the last lag whose |phi_{k,k}| reaches Tol. Default 1e-3.
	Tol float64
	// Run is how many consecutive lags must stay below Tol before the tail
	// is considered dead; it also reserves that many lags past the order
	// for the ACF-error measurement. Default 32.
	Run int
	// ACFTol, when positive, additionally bounds the induced
	// autocorrelation error: the order is advanced until the max over plan
	// lags of |AR(p)-implied ACF - target ACF| is at most ACFTol, and
	// Truncate fails if no usable order achieves it. When 0 the error is
	// only measured and reported via MaxACFError. Long-memory targets lose
	// their power-law tail under ANY finite AR order, so tight absolute
	// bounds over long windows force the order toward the plan length;
	// leave this 0 unless the long-lag ACF itself is the quantity under
	// study.
	ACFTol float64
}

// Truncated is a frozen AR(p) view of a plan. Like a Plan it is immutable
// and safe for concurrent use. Its conditional quantities agree exactly
// with the plan for steps k < p and approximate them (within the measured
// ACF error) for k >= p, where they become time-invariant.
type Truncated struct {
	plan   *Plan
	order  int
	row    []float64 // frozen reversed row p: row[i] = phi_{p,p-i}
	v      float64   // innovation variance v_p
	sqrtV  float64
	phiSum float64 // sum of the frozen row
	tol    float64
	maxErr float64 // measured max |implied ACF - target ACF| over lags (p, plan length)
}

// Truncate selects the truncation order and returns the fast generation
// view. The order is placed after the last partial correlation with
// magnitude >= Tol (requiring at least Run quiet lags after it inside the
// plan); when ACFTol is set the order is then advanced until the measured
// induced ACF error is within that bound.
func (p *Plan) Truncate(opt TruncateOptions) (*Truncated, error) {
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	run := opt.Run
	if run <= 0 {
		run = 32
	}
	maxOrder := p.n - 1 - run
	if maxOrder < 1 {
		return nil, fmt.Errorf("%w: plan length %d too short for run %d", ErrNoTruncation, p.n, run)
	}
	// Last lag whose partial correlation is still significant.
	order := 1
	for k := 1; k < p.n; k++ {
		if math.Abs(p.PartialCorr(k)) >= tol {
			order = k
		}
	}
	if order > maxOrder {
		return nil, fmt.Errorf("%w: partial correlations above %g up to lag %d of %d", ErrNoTruncation, tol, order, p.n)
	}
	for {
		maxErr := p.arExtensionError(order)
		if opt.ACFTol <= 0 || maxErr <= opt.ACFTol {
			t := &Truncated{
				plan:   p,
				order:  order,
				row:    append([]float64(nil), p.row(order)...),
				v:      p.v[order],
				sqrtV:  math.Sqrt(p.v[order]),
				phiSum: p.phiSum[order],
				tol:    tol,
				maxErr: maxErr,
			}
			return t, nil
		}
		next := order + order/2 + 16
		if next > maxOrder {
			return nil, fmt.Errorf("%w: ACF error %.3g > %g at max usable order %d", ErrNoTruncation, maxErr, opt.ACFTol, order)
		}
		order = next
	}
}

// arExtensionError extends the target autocorrelation with the AR(p)
// Yule–Walker recursion implied by row p and returns the max absolute
// deviation from the plan's table over lags p+1 .. n-1. Lags 0..p match
// exactly by construction of the Durbin–Levinson row.
func (p *Plan) arExtensionError(order int) float64 {
	row := p.row(order)
	ext := make([]float64, p.n)
	copy(ext, p.r[:order+1])
	var worst float64
	for k := order + 1; k < p.n; k++ {
		base := k - order
		var s float64
		for i := 0; i < order; i++ {
			s += row[i] * ext[base+i]
		}
		ext[k] = s
		if d := math.Abs(s - p.r[k]); d > worst {
			worst = d
		}
	}
	return worst
}

// Order returns the truncation order p.
func (t *Truncated) Order() int { return t.order }

// Row returns a copy of the frozen coefficient row in its stored reversed
// orientation: Row()[i] = phi_{p,p-i}, so the AR coefficient of lag k is
// Row()[p-k]. This is the exact vector CondMean regresses on, exposed for
// engines (streamblock) that rebuild the AR(p) conditional law elsewhere.
func (t *Truncated) Row() []float64 {
	return append([]float64(nil), t.row...)
}

// ImpliedACF returns the autocorrelation of the stationary AR(p) process the
// frozen row defines, at lags 0..lags-1: the target table up to the order
// (the row solves those Yule-Walker equations exactly) and the AR extension
// beyond it. The extension decays quasi-exponentially where a long-memory
// target decays as a power law — ImpliedACF minus the target IS the
// truncation error, lag by lag, which the conformance LRD-tail gate compares
// against the measured block-stream curve.
func (t *Truncated) ImpliedACF(lags int) []float64 {
	if lags <= 0 {
		return nil
	}
	p := t.plan
	ext := make([]float64, lags)
	head := t.order + 1
	if head > lags {
		head = lags
	}
	copy(ext, p.r[:head])
	for k := head; k < lags; k++ {
		base := k - t.order
		var s float64
		for i := 0; i < t.order; i++ {
			s += t.row[i] * ext[base+i]
		}
		ext[k] = s
	}
	return ext
}

// Tol returns the tolerance the truncation was built with.
func (t *Truncated) Tol() float64 { return t.tol }

// MaxACFError returns the measured max absolute deviation between the
// AR(p)-implied autocorrelation and the plan's table beyond the order.
func (t *Truncated) MaxACFError() float64 { return t.maxErr }

// Plan returns the exact plan the truncation was derived from.
func (t *Truncated) Plan() *Plan { return t.plan }

// Len reports the maximum path length, which for the AR(p) fast path is
// unbounded: generation beyond the plan length is exactly what truncation
// buys. It satisfies the same interface as Plan.Len for horizon checks.
func (t *Truncated) Len() int { return math.MaxInt }

// CondVar returns the conditional variance at step k: exact below the
// order, the frozen innovation variance at and beyond it.
func (t *Truncated) CondVar(k int) float64 {
	if k < t.order {
		return t.plan.v[k]
	}
	return t.v
}

// PhiRowSum returns the coefficient row sum at step k (frozen beyond the
// order), the quantity the importance-sampling twist needs.
func (t *Truncated) PhiRowSum(k int) float64 {
	if k < t.order {
		return t.plan.PhiRowSum(k)
	}
	return t.phiSum
}

// CondMean returns the conditional mean of X_k given x[0..k-1]: the exact
// full-history regression below the order, the frozen O(p) regression on
// the last p values at and beyond it.
func (t *Truncated) CondMean(k int, x []float64) float64 {
	if k < t.order {
		return t.plan.CondMean(k, x)
	}
	base := k - t.order
	h := x[base : base+t.order]
	row := t.row
	var m float64
	for i := t.order - 1; i >= 0; i-- {
		m += row[i] * h[i]
	}
	return m
}

// Generate fills out with one sample path. Unlike Plan.Generate, len(out)
// may exceed the plan length: the first p steps follow the exact
// conditional law (bit-identical to the exact generator), the rest the
// frozen AR(p) law.
func (t *Truncated) Generate(r *rng.Source, out []float64) {
	p := t.plan
	limit := t.order
	if limit > len(out) {
		limit = len(out)
	}
	for k := 0; k < limit; k++ {
		m := p.CondMean(k, out[:k])
		out[k] = m + math.Sqrt(p.v[k])*r.Norm()
	}
	row := t.row
	for k := t.order; k < len(out); k++ {
		h := out[k-t.order : k]
		var m float64
		for i := t.order - 1; i >= 0; i-- {
			m += row[i] * h[i]
		}
		out[k] = m + t.sqrtV*r.Norm()
	}
}

// Path allocates and returns a fresh sample path of length n (any n).
func (t *Truncated) Path(r *rng.Source, n int) []float64 {
	out := make([]float64, n)
	t.Generate(r, out)
	return out
}

// TruncatedGenerator streams a truncated-AR path one step at a time while
// holding only an O(p) window of history, so arbitrarily long paths run in
// constant memory. It is bound to a single goroutine.
type TruncatedGenerator struct {
	t   *Truncated
	rng *rng.Source
	pos int
	buf []float64 // history window; always ends at step pos-1
}

// NewTruncatedGenerator returns a streaming generator over the truncation.
func NewTruncatedGenerator(t *Truncated, r *rng.Source) *TruncatedGenerator {
	capacity := 2 * t.order
	if capacity < t.order+64 {
		capacity = t.order + 64
	}
	return &TruncatedGenerator{t: t, rng: r, buf: make([]float64, 0, capacity)}
}

// Next returns the next sample of the path.
func (g *TruncatedGenerator) Next() float64 {
	t := g.t
	k := g.pos
	var x float64
	if k < t.order {
		m := t.plan.CondMean(k, g.buf)
		x = m + math.Sqrt(t.plan.v[k])*g.rng.Norm()
	} else {
		if len(g.buf) == cap(g.buf) {
			n := copy(g.buf, g.buf[len(g.buf)-t.order:])
			g.buf = g.buf[:n]
		}
		h := g.buf[len(g.buf)-t.order:]
		row := t.row
		var m float64
		for i := t.order - 1; i >= 0; i-- {
			m += row[i] * h[i]
		}
		x = m + t.sqrtV*g.rng.Norm()
	}
	g.buf = append(g.buf, x)
	g.pos++
	return x
}

// Pos returns how many samples have been generated so far.
func (g *TruncatedGenerator) Pos() int { return g.pos }

// Reset discards the path so the generator can produce a fresh replication.
func (g *TruncatedGenerator) Reset() {
	g.pos = 0
	g.buf = g.buf[:0]
}

// Reseed discards the path and re-keys the rng in place, so a pooled
// generator produces the replication keyed by seed without allocating.
// Reseed(s) then Next... is bit-identical to a fresh generator built with
// rng.New(s).
func (g *TruncatedGenerator) Reseed(seed uint64) {
	g.rng.Reseed(seed)
	g.Reset()
}
