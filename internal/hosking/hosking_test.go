package hosking

import (
	"errors"
	"math"
	"sync"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

func TestPlanWhiteNoise(t *testing.T) {
	p, err := NewPlan(acf.White{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		if v := p.CondVar(k); math.Abs(v-1) > 1e-12 {
			t.Fatalf("white noise CondVar(%d) = %v, want 1", k, v)
		}
	}
	x := []float64{3, -2, 1}
	if m := p.CondMean(3, x); m != 0 {
		t.Fatalf("white noise CondMean = %v, want 0", m)
	}
}

func TestPlanAR1PartialCorrelations(t *testing.T) {
	// For AR(1) acf phi^k, the partial correlation is phi at lag 1 and 0
	// beyond; conditional mean is phi*x_{k-1}; conditional variance 1-phi^2.
	phi := 0.6
	model := acf.Exponential{Lambda: -math.Log(phi)}
	p, err := NewPlan(model, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PartialCorr(1); math.Abs(got-phi) > 1e-12 {
		t.Errorf("PartialCorr(1) = %v, want %v", got, phi)
	}
	for k := 2; k < 50; k++ {
		if got := p.PartialCorr(k); math.Abs(got) > 1e-10 {
			t.Errorf("PartialCorr(%d) = %v, want 0", k, got)
		}
		if v := p.CondVar(k); math.Abs(v-(1-phi*phi)) > 1e-10 {
			t.Errorf("CondVar(%d) = %v, want %v", k, v, 1-phi*phi)
		}
	}
	x := []float64{0.3, -0.7, 1.1, 0.2}
	want := phi * x[3]
	if got := p.CondMean(4, x); math.Abs(got-want) > 1e-10 {
		t.Errorf("CondMean = %v, want %v", got, want)
	}
}

func TestPlanFGNConditionalVariancesDecreasing(t *testing.T) {
	p, err := NewPlan(acf.FGN{H: 0.9}, 200)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for k := 0; k < 200; k++ {
		v := p.CondVar(k)
		if v <= 0 || v > prev+1e-15 {
			t.Fatalf("CondVar(%d) = %v not positive decreasing (prev %v)", k, v, prev)
		}
		prev = v
	}
}

func TestPlanRejectsInvalidACF(t *testing.T) {
	// r(k) = 0.99 for all k>0 is not PD at moderate lengths... actually it
	// is (equicorrelation is PD for rho>=-1/(n-1)); use an oscillating
	// overshoot instead: r(1)=0.9, r(2)=-0.9 violates PD.
	bad := sliceModel{1, 0.9, -0.9}
	if _, err := NewPlan(bad, 3); err == nil {
		t.Fatal("non-PD autocorrelation accepted")
	}
}

// sliceModel serves a fixed slice as an acf.Model (0 beyond the end).
type sliceModel []float64

func (s sliceModel) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	if k < len(s) {
		return s[k]
	}
	return 0
}

// badLagZero is a model violating At(0) == 1.
type badLagZero struct{}

func (badLagZero) At(k int) float64 { return 0.5 }

func TestPlanRejectsBadLagZero(t *testing.T) {
	if _, err := NewPlan(badLagZero{}, 1); err == nil {
		t.Fatal("model with At(0) != 1 accepted")
	}
	if _, err := NewPlan(acf.White{}, 0); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestRawPaperCompositeNotPositiveDefinite(t *testing.T) {
	// The paper's literal eq.-13 coefficients leave a ~0.013 jump at the
	// knee, which destroys positive definiteness just past lag 60. This is
	// why eq. (12) (continuity) must be enforced before generation.
	_, err := NewPlan(acf.PaperComposite(), 200)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := NewPlan(acf.PaperComposite().Continuous(), 200); err != nil {
		t.Fatalf("continuous variant rejected: %v", err)
	}
}

// pathACF generates reps paths of length n and returns the pooled sample ACF.
func pathACF(t *testing.T, model acf.Model, n, reps, maxLag int, seed uint64) []float64 {
	t.Helper()
	p, err := NewPlan(model, n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	acov := make([]float64, maxLag+1)
	for rep := 0; rep < reps; rep++ {
		x := p.Path(r, n)
		a := stats.AutocovarianceKnownMean(x, 0, maxLag)
		for k := range acov {
			acov[k] += a[k]
		}
	}
	out := make([]float64, maxLag+1)
	for k := range out {
		out[k] = acov[k] / acov[0]
	}
	return out
}

func TestGeneratedPathMatchesTargetACF(t *testing.T) {
	models := map[string]acf.Model{
		"ar1":       acf.Exponential{Lambda: 0.2},
		"fgn09":     acf.FGN{H: 0.9},
		"composite": acf.PaperComposite().Continuous(),
	}
	for name, model := range models {
		got := pathACF(t, model, 1200, 40, 30, 99)
		for k := 1; k <= 30; k++ {
			want := model.At(k)
			if math.Abs(got[k]-want) > 0.05 {
				t.Errorf("%s: acf[%d] = %v, want %v", name, k, got[k], want)
			}
		}
	}
}

func TestGeneratedPathMoments(t *testing.T) {
	p, err := NewPlan(acf.FGN{H: 0.8}, 500)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(123)
	var all []float64
	for rep := 0; rep < 100; rep++ {
		all = append(all, p.Path(r, 500)...)
	}
	m, v := stats.MeanVar(all)
	// LRD sample means converge slowly (var ~ n^(2H-2)); loose tolerance.
	if math.Abs(m) > 0.1 {
		t.Errorf("mean = %v, want ~0", m)
	}
	if math.Abs(v-1) > 0.08 {
		t.Errorf("variance = %v, want ~1", v)
	}
}

func TestGeneratorStreaming(t *testing.T) {
	p, err := NewPlan(acf.Exponential{Lambda: 0.1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// A generator with the same rng stream must reproduce Plan.Generate.
	want := p.Path(rng.New(7), 100)
	g := NewGenerator(p, rng.New(7))
	for i := 0; i < 100; i++ {
		if got := g.Next(); got != want[i] {
			t.Fatalf("streaming mismatch at %d: %v vs %v", i, got, want[i])
		}
	}
	if g.Pos() != 100 {
		t.Errorf("Pos = %d, want 100", g.Pos())
	}
	g.Reset()
	if g.Pos() != 0 {
		t.Errorf("Pos after Reset = %d", g.Pos())
	}
}

func TestGeneratorPanicsWhenExhausted(t *testing.T) {
	p, _ := NewPlan(acf.White{}, 2)
	g := NewGenerator(p, rng.New(1))
	g.Next()
	g.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted generator did not panic")
		}
	}()
	g.Next()
}

func TestGeneratePanicsBeyondPlan(t *testing.T) {
	p, _ := NewPlan(acf.White{}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("over-long Generate did not panic")
		}
	}()
	p.Generate(rng.New(1), make([]float64, 5))
}

func TestPlanConcurrentUse(t *testing.T) {
	p, err := NewPlan(acf.PaperComposite().Continuous(), 300)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]float64, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = p.Path(rng.New(uint64(i)), 300)
		}(i)
	}
	wg.Wait()
	// Same seeds as sequential use must match (plan is read-only).
	for i := 0; i < 8; i++ {
		want := p.Path(rng.New(uint64(i)), 300)
		for j := range want {
			if results[i][j] != want[j] {
				t.Fatalf("concurrent path %d differs at %d", i, j)
			}
		}
	}
}

func TestConditionalPathDistribution(t *testing.T) {
	// Conditioned on a strongly positive recent history, an AR(1)-like
	// process must start its continuation high and relax toward 0.
	p, err := NewPlan(acf.Exponential{Lambda: 0.1}, 200)
	if err != nil {
		t.Fatal(err)
	}
	observed := make([]float64, 50)
	for i := range observed {
		observed[i] = 2.0
	}
	const reps = 2000
	r := rng.New(31)
	first := 0.0
	last := 0.0
	for rep := 0; rep < reps; rep++ {
		cont := p.ConditionalPath(r, observed, 100)
		first += cont[0]
		last += cont[99]
	}
	first /= reps
	last /= reps
	// One step ahead: E[X|history=2] ~ 2 * r(1) ~ 1.8.
	if first < 1.5 || first > 2.1 {
		t.Errorf("one-step conditional mean = %v, want ~1.8", first)
	}
	// Far ahead the conditioning washes out (r(100) ~ 0).
	if math.Abs(last) > 0.2 {
		t.Errorf("100-step conditional mean = %v, want ~0", last)
	}
}

func TestConditionalPathMatchesForecastMean(t *testing.T) {
	p, err := NewPlan(acf.FGN{H: 0.8}, 120)
	if err != nil {
		t.Fatal(err)
	}
	observed := []float64{1.5, -0.3, 0.8, 2.1, 0.2}
	mean, std := p.Forecast(observed, 20)
	if len(mean) != 20 || len(std) != 20 {
		t.Fatalf("forecast lengths %d/%d", len(mean), len(std))
	}
	// Monte-Carlo average of conditional paths converges to the forecast
	// mean at step 0 (exact one-step predictor).
	const reps = 5000
	r := rng.New(33)
	var first float64
	for rep := 0; rep < reps; rep++ {
		first += p.ConditionalPath(r, observed, 1)[0]
	}
	first /= reps
	if math.Abs(first-mean[0]) > 4*std[0]/math.Sqrt(reps) {
		t.Errorf("conditional sample mean %v vs forecast %v", first, mean[0])
	}
	// Stds positive and (weakly) increasing toward the unconditional 1.
	for i, s := range std {
		if s <= 0 || s > 1+1e-9 {
			t.Errorf("std[%d] = %v", i, s)
		}
	}
}

func TestConditionalPathPanicsBeyondPlan(t *testing.T) {
	p, _ := NewPlan(acf.White{}, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("over-long conditional path did not panic")
		}
	}()
	p.ConditionalPath(rng.New(1), make([]float64, 8), 5)
}

func TestACFAccessor(t *testing.T) {
	p, _ := NewPlan(acf.Exponential{Lambda: 0.5}, 10)
	if p.ACF(0) != 1 {
		t.Error("ACF(0) != 1")
	}
	if p.ACF(3) != math.Exp(-1.5) {
		t.Error("ACF(3) wrong")
	}
	if p.ACF(-1) != 0 || p.ACF(99) != 0 {
		t.Error("out-of-range ACF should be 0")
	}
	if p.Len() != 10 {
		t.Error("Len wrong")
	}
}

func BenchmarkNewPlan1000(b *testing.B) {
	model := acf.PaperComposite().Continuous()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(model, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPath1000(b *testing.B) {
	p, err := NewPlan(acf.PaperComposite().Continuous(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Path(r, 1000)
	}
}
