// Package streamblock is the exact streaming synthesis engine: an
// overlapped-block Davies-Harte generator that produces unbounded Gaussian
// background streams by generating fixed-size circulant blocks ahead of the
// read cursor and stitching consecutive blocks with an AR(p)-conditional
// correction. Live sessions get exact-FFT statistical quality inside every
// block at an amortized per-frame cost near Plan.PathRealInto, instead of
// the truncated-AR(p) recursion's O(p) per frame.
//
// # Algorithm
//
// Each block b draws a fresh Davies-Harte path of length p+B from a
// per-block seed (p = the AR truncation order, B = the emitted block size):
// the first p samples are a synthetic "fake past", the remaining B are the
// emission candidates. For b > 0 the fake past disagrees with the last p
// frames actually emitted by block b-1 (the history), so the emission is
// corrected by transplanting the conditional mean: with diff = history -
// fakePast, the correction d is the homogeneous AR(p) extension of diff —
// the exact difference E[future | history] - E[future | fakePast] under the
// frozen AR(p) law — added to the first C emitted samples. For a true AR(p)
// process this stitch is exact (the fluctuation around the conditional mean
// is independent of the past); for the long-memory targets here its error is
// the same AR-truncation error class the hosking fast path already carries,
// but diluted by the boundary-crossing fraction k/B per lag.
//
// The extension is computed in O((p+C) log(p+C)) per refill, not O(p·C): the
// residual r = diff - phi*diff (support p) is convolved with the precomputed
// AR impulse response psi (1/(1-Phi(x)), truncated to p+C) through the
// packed real FFT at size F = nextpow2(2p+C), so the whole stitch amortizes
// to a few ns per emitted frame.
//
// # Seek in O(1)
//
// The correction horizon is capped at C <= B-p, so the last p emitted frames
// of every block are untouched raw samples. The history entering block b is
// therefore a pure function of raw block b-1, which depends only on
// blockSeed(seed, b-1): any position can be reached by regenerating at most
// two blocks (the predecessor for its tail, then the target block), bit-
// identically to sequential playback — backward seek costs the same two
// refills as forward seek.
//
// A Stream owns a per-session arena (raw block, history, FFT pads, spectrum
// scratch, RNG) allocated once at NewStream; steady-state refills perform no
// allocations.
package streamblock

import (
	"fmt"
	"time"

	"vbrsim/internal/acf"
	"vbrsim/internal/daviesharte"
	"vbrsim/internal/fft"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
)

// Config sizes an engine. The zero value selects the serving defaults.
type Config struct {
	// Total is the Davies-Harte path length per refill (fake past + emitted
	// block), rounded up to a power of two so the circulant is exactly
	// 2*Total. Default 8192. Must leave room for Total - order > order.
	Total int
	// Horizon overrides the correction horizon C (frames of each block that
	// receive the stitch correction); 0 selects min(B-p, nextpow2(4p)).
	// It is always clamped to B-p to preserve the O(1) seek invariant.
	Horizon int
}

// DefaultTotal is the serving block total: with the paper model's order
// p=361 it gives B=7831 emitted frames per 16384-point circulant, large
// enough to amortize the refill FFTs below the per-frame cost of the
// truncated recursion and small enough that a refill stays ~1ms.
const DefaultTotal = 8192

// Engine holds the immutable precomputed state shared by every stream of
// one (model, truncation, config): the Davies-Harte plan, the AR row, and
// the spectrum of the stitch kernel. Safe for concurrent use.
type Engine struct {
	plan  *daviesharte.Plan
	trunc *hosking.Truncated

	order   int // p: AR truncation order = overlap length
	block   int // B: emitted frames per refill
	horizon int // C: corrected frames per block, <= B - p
	conv    int // F: FFT size of the stitch convolution, >= 2p+C-1

	phi     []float64    // phi[k] for k = 1..p (phi[0] unused)
	psiSpec []complex128 // half-spectrum of psi (AR impulse response, length p+C) at size F
	invConv float64      // 1/F: normalization of the unscaled Hermitian synthesis
}

// NewEngine builds the engine for the model's frozen AR(p) view. The model
// must be the same ACF the truncation was derived from.
func NewEngine(model acf.Model, trunc *hosking.Truncated, cfg Config) (*Engine, error) {
	p := trunc.Order()
	total := cfg.Total
	if total == 0 {
		total = DefaultTotal
	}
	total = fft.NextPowerOfTwo(total)
	if total < 2*p+2 {
		return nil, fmt.Errorf("streamblock: total %d leaves no room past order %d (need > 2p)", total, p)
	}
	b := total - p
	c := cfg.Horizon
	if c <= 0 {
		c = fft.NextPowerOfTwo(4 * p)
	}
	if c > b-p {
		c = b - p
	}
	conv := fft.NextPowerOfTwo(2*p + c)

	plan, err := daviesharte.NewPlan(model, total, daviesharte.Options{AllowApprox: true})
	if err != nil {
		return nil, err
	}

	// AR coefficients from the reversed row: row[i] = phi_{p,p-i}.
	row := trunc.Row()
	phi := make([]float64, p+1)
	for k := 1; k <= p; k++ {
		phi[k] = row[p-k]
	}

	// psi = 1/(1-Phi(x)) truncated to p+C terms: psi[0]=1,
	// psi[t] = sum_{k=1..min(t,p)} phi[k]*psi[t-k].
	psi := make([]float64, conv)
	psi[0] = 1
	for t := 1; t < p+c; t++ {
		kmax := t
		if kmax > p {
			kmax = p
		}
		var s float64
		for k := 1; k <= kmax; k++ {
			s += phi[k] * psi[t-k]
		}
		psi[t] = s
	}
	psiSpec := make([]complex128, conv/2+1)
	if err := fft.RealForward(psiSpec, psi); err != nil {
		return nil, err
	}

	return &Engine{
		plan:    plan,
		trunc:   trunc,
		order:   p,
		block:   b,
		horizon: c,
		conv:    conv,
		phi:     phi,
		psiSpec: psiSpec,
		invConv: 1 / float64(conv),
	}, nil
}

// Order returns the AR overlap length p.
func (e *Engine) Order() int { return e.order }

// Block returns the emitted frames per refill B.
func (e *Engine) Block() int { return e.block }

// Horizon returns the correction horizon C.
func (e *Engine) Horizon() int { return e.horizon }

// NegativeMass reports the circulant embedding's clamped eigenvalue mass
// (0 means the per-block synthesis is exact).
func (e *Engine) NegativeMass() float64 { return e.plan.NegativeMass() }

// blockSeed derives the RNG seed of one block: a SplitMix64 mix of the
// stream seed and the block index, so block k is a pure function of
// (seed, k) — the property O(1) seek rests on.
func blockSeed(seed uint64, block int) uint64 {
	z := seed + (uint64(block)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is one unbounded background stream: the per-session arena plus the
// read cursor. It is bound to a single goroutine.
type Stream struct {
	e    *Engine
	seed uint64

	src rng.Source
	dh  daviesharte.Scratch

	raw  []float64    // p+B: current block's DH path; raw[p:] is the emitted view
	hist []float64    // p: raw tail of the previous block
	pad  []float64    // F: zero-padded stitch residual
	spec []complex128 // F/2+1: residual spectrum
	zs   []complex128 // F/2: Hermitian synthesis scratch
	d    []float64    // p+C: convolution output (correction lives in d[p:])

	block int // index of the materialized block; -1 before the first refill
	off   int // next emit offset within raw[p:], 0..B
}

// NewStream allocates a stream arena for the engine. The first refill is
// lazy, so opening a stream that is immediately seeked pays for exactly two
// block generations, not three.
func (e *Engine) NewStream(seed uint64) *Stream {
	s := &Stream{
		e:    e,
		raw:  make([]float64, e.order+e.block),
		hist: make([]float64, e.order),
		pad:  make([]float64, e.conv),
		spec: make([]complex128, e.conv/2+1),
		zs:   make([]complex128, e.conv/2),
		d:    make([]float64, e.order+e.horizon),
	}
	s.Reseed(seed)
	observeArena(s.arenaBytes())
	return s
}

// arenaBytes is the arena footprint this stream contributes to the gauge.
func (s *Stream) arenaBytes() int64 {
	return int64(8*(len(s.raw)+len(s.hist)+len(s.pad)+len(s.d)) +
		16*(len(s.spec)+len(s.zs)))
}

// Close releases the stream's contribution to the arena-bytes gauge. The
// buffers themselves are garbage-collected; Close only keeps the gauge
// honest and is safe to skip for short-lived streams in tests.
func (s *Stream) Close() { observeArena(-s.arenaBytes()) }

// Seed returns the seed driving the stream.
func (s *Stream) Seed() uint64 { return s.seed }

// Engine returns the engine the stream draws from.
func (s *Stream) Engine() *Engine { return s.e }

// Pos returns the index of the next frame the stream will produce.
func (s *Stream) Pos() int {
	if s.block < 0 {
		return 0
	}
	return s.block*s.e.block + s.off
}

// Reseed resets the stream to position 0 under a new seed, reusing the
// arena. A stream reseeded with its own seed replays bit-identically.
func (s *Stream) Reseed(seed uint64) {
	s.seed = seed
	s.block = -1
	s.off = s.e.block
}

// refillRaw regenerates block b's raw Davies-Harte path into the arena
// without stitching (the form seek needs for the predecessor block).
func (s *Stream) refillRaw(b int) {
	s.src.Reseed(blockSeed(s.seed, b))
	s.e.plan.PathRealInto(s.raw, &s.dh, &s.src)
}

// refill materializes block b: raw path, stitch correction against the
// current history (skipped for block 0), and the history handoff for the
// next block. It assumes hist holds block b-1's raw tail when b > 0.
func (s *Stream) refill(b int) {
	start := time.Now()
	e := s.e
	s.refillRaw(b)
	if b > 0 {
		s.stitch()
	}
	// The raw tail is outside the corrected span (C <= B-p), so the handoff
	// is identical whether it is read before or after the stitch — and a
	// seek that regenerates only the raw predecessor gets the same bytes.
	copy(s.hist, s.raw[e.block:])
	s.block = b
	s.off = 0
	observeRefill(time.Since(start).Nanoseconds())
}

// stitch adds the AR(p)-conditional correction to raw[p:p+C]: the
// homogeneous AR extension of diff = hist - fakePast, computed as
// psi * (diff - phi*diff) through the packed real FFT.
func (s *Stream) stitch() {
	e := s.e
	p := e.order
	// Residual r[t] = diff[t] - sum_{k=1..t} phi[k]*diff[t-k], t < p, into
	// the zero-padded conv buffer. diff itself is formed on the fly; the
	// triangular phi pass is O(p^2/2), a few ns per emitted frame amortized.
	pad := s.pad
	for t := 0; t < p; t++ {
		pad[t] = s.hist[t] - s.raw[t]
	}
	for t := p - 1; t >= 1; t-- {
		var acc float64
		diff := pad[:t]
		phi := e.phi[1 : t+1]
		for k := 1; k <= t; k++ {
			acc += phi[k-1] * diff[t-k]
		}
		pad[t] -= acc
	}
	for t := p; t < e.conv; t++ {
		pad[t] = 0
	}
	if err := fft.RealForward(s.spec, pad); err != nil {
		panic("streamblock: internal FFT error: " + err.Error())
	}
	// HermitianReal computes the FORWARD transform of the Hermitian
	// extension; on the conjugated product conj(spec·psiSpec) that equals F
	// times the inverse DFT of the product — i.e. the circular convolution
	// r*psi, unnormalized. (For the real-even autocovariance spectrum forward
	// and inverse coincide, which is why that caller skips the conj.) The
	// product and conjugation run fused inside the synthesis kernel's first
	// pass, bit-identical to materializing the conjugated product spectrum.
	// Only the prefix p+C is unpacked; the correction is d[p..p+C).
	if err := fft.HermitianRealConjProduct(s.d, s.spec, e.psiSpec, s.zs); err != nil {
		panic("streamblock: internal FFT error: " + err.Error())
	}
	out := s.raw[p : p+e.horizon]
	corr := s.d[p:]
	for j := range out {
		out[j] += corr[j] * e.invConv
	}
}

// advance materializes the next block in sequence.
func (s *Stream) advance() {
	s.refill(s.block + 1)
}

// Next returns the next background sample.
func (s *Stream) Next() float64 {
	if s.off == s.e.block {
		s.advance()
	}
	v := s.raw[s.e.order+s.off]
	s.off++
	return v
}

// Fill produces len(out) consecutive background samples. Steady-state calls
// perform no allocations.
func (s *Stream) Fill(out []float64) {
	for len(out) > 0 {
		if s.off == s.e.block {
			s.advance()
		}
		n := copy(out, s.raw[s.e.order+s.off:])
		s.off += n
		out = out[n:]
	}
}

// Seek positions the stream so the next sample is sample pos, in O(1):
// at most two block refills regardless of distance or direction, bit-
// identical to sequential playback reaching the same position.
func (s *Stream) Seek(pos int) {
	if pos < 0 {
		pos = 0
	}
	e := s.e
	b, off := pos/e.block, pos%e.block
	if b == s.block {
		s.off = off
		return
	}
	if b > 0 {
		// History = raw tail of the predecessor; its stitch correction never
		// reaches the tail, so the raw path alone reproduces it.
		s.refillRaw(b - 1)
		copy(s.hist, s.raw[e.block:])
	}
	s.refill(b)
	s.off = off
}
