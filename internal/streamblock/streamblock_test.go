package streamblock

import (
	"bytes"
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/hosking"
	"vbrsim/internal/obs"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

// paperACF mirrors modelspec.Paper()'s background model (the package cannot
// import modelspec — modelspec sits above this engine).
func paperACF(t testing.TB) acf.Composite {
	t.Helper()
	c := acf.PaperComposite().Continuous()
	cc, err := c.EnsureConvex()
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

func testEngine(t testing.TB, total int) *Engine {
	t.Helper()
	model := paperACF(t)
	plan, err := hosking.NewPlan(model, 1024)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := plan.Truncate(hosking.TruncateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(model, trunc, Config{Total: total})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestStitchMatchesDirectRecursion pins the FFT-convolution stitch against
// the definition: the correction added to the first C emitted samples must
// equal the homogeneous AR(p) extension of diff = hist - fakePast, computed
// by the direct recursion.
func TestStitchMatchesDirectRecursion(t *testing.T) {
	eng := testEngine(t, 1024)
	p, c := eng.order, eng.horizon
	s := eng.NewStream(1)
	defer s.Close()

	r := rng.New(99)
	for i := range s.hist {
		s.hist[i] = r.Norm()
	}
	for i := range s.raw {
		s.raw[i] = r.Norm()
	}
	before := append([]float64(nil), s.raw...)

	// Direct homogeneous extension of diff under the frozen AR(p) row.
	ext := make([]float64, p+c)
	for i := 0; i < p; i++ {
		ext[i] = s.hist[i] - before[i]
	}
	for k := p; k < p+c; k++ {
		var m float64
		for j := 1; j <= p; j++ {
			m += eng.phi[j] * ext[k-j]
		}
		ext[k] = m
	}

	s.stitch()
	for j := 0; j < c; j++ {
		want := before[p+j] + ext[p+j]
		got := s.raw[p+j]
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("corrected sample %d: got %v, want %v (diff %.3g)", j, got, want, got-want)
		}
	}
	// The fake past and everything beyond the horizon must be untouched —
	// the raw-tail invariant seek depends on.
	for i := 0; i < p; i++ {
		if s.raw[i] != before[i] {
			t.Fatalf("stitch modified fake past at %d", i)
		}
	}
	for i := p + c; i < len(s.raw); i++ {
		if s.raw[i] != before[i] {
			t.Fatalf("stitch modified sample %d beyond horizon %d", i, c)
		}
	}
}

// TestSeekBitIdentity locks the O(1) seek contract: seeking to any position
// — forward, backward, mid-block, exactly on a block boundary — then
// reading must be bit-identical to a fresh stream played sequentially.
func TestSeekBitIdentity(t *testing.T) {
	eng := testEngine(t, 1024)
	b := eng.block
	const seed = 424242
	ref := eng.NewStream(seed)
	defer ref.Close()
	total := 3*b + 50
	want := make([]float64, total)
	ref.Fill(want)

	s := eng.NewStream(seed)
	defer s.Close()
	positions := []int{0, 5, b - 1, b, b + 1, b + eng.horizon, 2 * b, 2*b + 7, 3 * b, 1, b}
	buf := make([]float64, 64)
	for _, pos := range positions {
		s.Seek(pos)
		if got := s.Pos(); got != pos {
			t.Fatalf("Seek(%d): Pos() = %d", pos, got)
		}
		n := len(buf)
		if pos+n > total {
			n = total - pos
		}
		s.Fill(buf[:n])
		for i := 0; i < n; i++ {
			if math.Float64bits(buf[i]) != math.Float64bits(want[pos+i]) {
				t.Fatalf("Seek(%d): frame %d differs: got %v, want %v", pos, pos+i, buf[i], want[pos+i])
			}
		}
	}
}

// TestReseedReplays proves a reseeded arena reproduces the stream of a
// fresh one bit-exactly (the property the conformance replication loop and
// pooled servers rely on).
func TestReseedReplays(t *testing.T) {
	eng := testEngine(t, 1024)
	s := eng.NewStream(7)
	defer s.Close()
	n := 2*eng.block + 13
	first := make([]float64, n)
	s.Fill(first)
	s.Reseed(7)
	if s.Pos() != 0 {
		t.Fatalf("Reseed left Pos() = %d", s.Pos())
	}
	second := make([]float64, n)
	s.Fill(second)
	for i := range first {
		if math.Float64bits(first[i]) != math.Float64bits(second[i]) {
			t.Fatalf("frame %d differs after Reseed: %v vs %v", i, first[i], second[i])
		}
	}

	// A different seed must give a different stream.
	s.Reseed(8)
	other := make([]float64, n)
	s.Fill(other)
	same := 0
	for i := range other {
		if other[i] == first[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("streams for different seeds are identical")
	}
}

// TestNextMatchesFill checks the two read paths agree bit-exactly across
// block boundaries.
func TestNextMatchesFill(t *testing.T) {
	eng := testEngine(t, 1024)
	a := eng.NewStream(3)
	b := eng.NewStream(3)
	defer a.Close()
	defer b.Close()
	n := eng.block + 17
	filled := make([]float64, n)
	a.Fill(filled)
	for i := 0; i < n; i++ {
		if v := b.Next(); math.Float64bits(v) != math.Float64bits(filled[i]) {
			t.Fatalf("Next at %d: %v, Fill: %v", i, v, filled[i])
		}
	}
}

// TestSteadyStateZeroAlloc gates the arena contract: once a stream is warm,
// filling whole blocks allocates nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	eng := testEngine(t, 1024)
	s := eng.NewStream(11)
	defer s.Close()
	out := make([]float64, eng.block)
	s.Fill(out) // warm the arena and the shared FFT tables
	allocs := testing.AllocsPerRun(8, func() {
		s.Fill(out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Fill allocates %.1f objects per block, want 0", allocs)
	}
}

// TestMomentsSane is a cheap statistical smoke test (the conformance suite
// carries the real gates): a long stream must be near zero-mean unit-
// variance, including across many stitched boundaries.
func TestMomentsSane(t *testing.T) {
	eng := testEngine(t, 1024)
	s := eng.NewStream(5)
	defer s.Close()
	x := make([]float64, 1<<16)
	s.Fill(x)
	mean, variance := stats.MeanVar(x)
	if math.Abs(mean) > 0.5 {
		t.Fatalf("mean %v too far from 0", mean)
	}
	if variance < 0.7 || variance > 1.3 {
		t.Fatalf("variance %v too far from 1", variance)
	}
}

// TestEngineForCaches checks sessions of one spec share one engine, and
// that distinct configs get distinct engines.
func TestEngineForCaches(t *testing.T) {
	model := paperACF(t)
	plan, err := hosking.NewPlan(model, 1024)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := plan.Truncate(hosking.TruncateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := EngineFor(model, trunc, Config{Total: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EngineFor(model, trunc, Config{Total: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("EngineFor rebuilt an engine for an identical key")
	}
	c, err := EngineFor(model, trunc, Config{Total: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("EngineFor shared an engine across different configs")
	}
}

// TestRegisterMetrics pins the exported names and checks the refill counter
// and arena gauge move.
func TestRegisterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	before := refillsTotal.Load()

	eng := testEngine(t, 1024)
	s := eng.NewStream(2)
	out := make([]float64, eng.block+1) // forces two refills
	s.Fill(out)
	if got := refillsTotal.Load(); got < before+2 {
		t.Fatalf("refills counter moved %d, want >= 2", got-before)
	}
	if arenaBytes.Load() <= 0 {
		t.Fatal("arena gauge not positive with a live stream")
	}
	s.Close()

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"vbrsim_streamblock_refills_total",
		"vbrsim_streamblock_block_ns",
		"vbrsim_streamblock_arena_bytes",
	} {
		if !bytes.Contains(buf.Bytes(), []byte("# TYPE "+name+" ")) {
			t.Fatalf("metric %s missing from exposition:\n%s", name, buf.String())
		}
	}
}

// TestNewEngineRejectsTinyTotal checks the p-room validation.
func TestNewEngineRejectsTinyTotal(t *testing.T) {
	model := paperACF(t)
	plan, err := hosking.NewPlan(model, 1024)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := plan.Truncate(hosking.TruncateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(model, trunc, Config{Total: 512}); err == nil {
		t.Fatal("NewEngine accepted a total smaller than twice the order")
	}
}
