package streamblock

import (
	"sync"

	"vbrsim/internal/acf"
	"vbrsim/internal/hosking"
)

// engineKey identifies a cached engine. The truncation pointer stands in
// for the model identity: truncations come from the shared hosking plan
// cache, so the same (model fingerprint, plan length) yields the same
// *Truncated across sessions, and a distinct truncation means a distinct
// conditional law regardless of the model's provenance.
type engineKey struct {
	trunc *hosking.Truncated
	cfg   Config
}

var (
	cacheMu     sync.Mutex
	engineCache = map[engineKey]*Engine{}
)

// engineCacheCap bounds the cache; engines are a few hundred KB each and
// keyed by live truncations, so the cap is a leak guard, not an LRU — on
// overflow the map is simply dropped (rebuilds are ~1ms).
const engineCacheCap = 32

// EngineFor returns the cached engine for (trunc, cfg), building it on
// first use. Every session of the same spec shares one engine, so the
// Davies-Harte plan and the stitch-kernel spectrum are built once.
func EngineFor(model acf.Model, trunc *hosking.Truncated, cfg Config) (*Engine, error) {
	key := engineKey{trunc: trunc, cfg: cfg}
	cacheMu.Lock()
	if e, ok := engineCache[key]; ok {
		cacheMu.Unlock()
		return e, nil
	}
	cacheMu.Unlock()

	e, err := NewEngine(model, trunc, cfg)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	if prev, ok := engineCache[key]; ok {
		e = prev // lost a build race; keep the shared one
	} else {
		if len(engineCache) >= engineCacheCap {
			engineCache = map[engineKey]*Engine{}
		}
		engineCache[key] = e
	}
	cacheMu.Unlock()
	return e, nil
}
