package streamblock

import (
	"sync/atomic"

	"vbrsim/internal/obs"
)

// Package-level instrumentation: refill counters and the arena gauge are
// plain atomics updated on every stream regardless of registration, and
// RegisterMetrics exposes them as live collectors (the hosking plan-cache
// idiom). The histogram needs a registry-owned instrument, so refills
// observe it through an atomic pointer that registration swaps in.
var (
	refillsTotal atomic.Uint64
	arenaBytes   atomic.Int64
	blockNsHist  atomic.Pointer[obs.Histogram]
)

func observeRefill(ns int64) {
	refillsTotal.Add(1)
	if h := blockNsHist.Load(); h != nil {
		h.Observe(float64(ns))
	}
}

func observeArena(delta int64) {
	arenaBytes.Add(delta)
}

// RegisterMetrics exposes the engine's counters on r:
// vbrsim_streamblock_refills_total, vbrsim_streamblock_block_ns, and
// vbrsim_streamblock_arena_bytes. Registration is idempotent per registry;
// the histogram feeds whichever registry registered most recently (one
// registry per process in the daemon).
func RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("vbrsim_streamblock_refills_total",
		"Block refills performed by streamblock streams.",
		func() float64 { return float64(refillsTotal.Load()) })
	r.GaugeFunc("vbrsim_streamblock_arena_bytes",
		"Bytes held by live streamblock per-stream arenas.",
		func() float64 { return float64(arenaBytes.Load()) })
	blockNsHist.Store(r.Histogram("vbrsim_streamblock_block_ns",
		"Wall time of one block refill (raw path + stitch), nanoseconds.",
		[]float64{50e3, 100e3, 250e3, 500e3, 1e6, 2.5e6, 5e6, 10e6, 50e6}))
}
