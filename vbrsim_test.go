package vbrsim

import (
	"math"
	"testing"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// README quick start does: generate a trace, fit the unified model,
// synthesize traffic, and estimate an overflow probability two ways.
func TestPublicAPIEndToEnd(t *testing.T) {
	tr, err := GenerateMPEGTrace(MPEGTraceConfig{Frames: 1 << 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.Summarize(); s.Frames != 1<<15 || s.MeanBytes <= 0 {
		t.Fatalf("bad trace summary %+v", s)
	}

	// Hurst estimation on the raw trace.
	h, vt, rs, err := EstimateHurst(tr.Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0.5 || h >= 1 {
		t.Errorf("H = %v", h)
	}
	if vt.H == 0 || rs.H == 0 {
		t.Error("estimator details missing")
	}

	// Unified model on the I-frame subsequence.
	model, err := Fit(tr.ByType(FrameI), FitOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := model.Generate(2000, 42, BackendAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(syn) != 2000 {
		t.Fatalf("synthesized %d frames", len(syn))
	}

	// Composite GOP model.
	g, err := FitGOP(tr, FitOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	synTr, err := g.Generate(2400, 43, BackendAuto)
	if err != nil {
		t.Fatal(err)
	}
	if synTr.Len() != 2400 || synTr.Types[0] != FrameI {
		t.Fatal("bad composite trace")
	}

	// Queueing: plain MC vs IS on the same model.
	service, err := ServiceForUtilization(model.MeanRate(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := model.Plan(150)
	if err != nil {
		t.Fatal(err)
	}
	src := ArrivalSource{Plan: plan, Transform: model.Transform}
	bufAbs := 10 * model.MeanRate()
	mc, err := EstimateOverflowMC(src, service, bufAbs, 150, MCOptions{Replications: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	is, err := EstimateOverflowIS(ISConfig{
		Plan: plan, Transform: model.Transform,
		Service: service, Buffer: bufAbs, Horizon: 150,
		Twist: 0.8, Replications: 2000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.P > 0.01 && is.P > 0 {
		if math.Abs(math.Log10(is.P)-math.Log10(mc.P)) > 0.5 {
			t.Errorf("IS %v and MC %v disagree by more than half a decade", is.P, mc.P)
		}
	}

	// Twist search and variance reduction report.
	results, best, err := SearchTwist(ISConfig{
		Plan: plan, Transform: model.Transform,
		Service: service, Buffer: bufAbs, Horizon: 150,
		Replications: 500, Seed: 5,
	}, []float64{0.5, 1.0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if best >= 0 && VarianceReduction(results[best].Result) <= 0 {
		t.Error("no variance reduction reported at the best twist")
	}

	// Transient estimation.
	series, err := EstimateTransientIS(ISConfig{
		Plan: plan, Transform: model.Transform,
		Service: service, Buffer: bufAbs,
		Twist: 0.8, Replications: 500, Seed: 6,
	}, []int{50, 100, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("transient series len %d", len(series))
	}
}

func TestPublicBaselines(t *testing.T) {
	marginal, err := NewEmpirical([]float64{100, 200, 300, 400, 500})
	if err != nil {
		t.Fatal(err)
	}
	d := DAR1{Rho: 0.9, Marginal: marginal}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	path := d.ArrivalPath(NewRand(1), 100)
	if len(path) != 100 {
		t.Fatal("bad DAR1 path")
	}
	m := MMPP2{Rate0: 1, Rate1: 8, P01: 0.05, P10: 0.1}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.MeanRate() <= 0 {
		t.Fatal("bad MMPP mean")
	}
}

func TestPublicLab(t *testing.T) {
	lab := NewLab(LabConfig{Quick: true, Seed: 31})
	res, err := lab.Run("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig3" || len(res.Series) == 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestPublicExtensions(t *testing.T) {
	// fGn / FARIMA generation.
	x, err := GenerateFGN(0.85, 4096, 1)
	if err != nil || len(x) != 4096 {
		t.Fatalf("GenerateFGN: %v len %d", err, len(x))
	}
	y, err := GenerateFARIMA(0.3, 4096, 2)
	if err != nil || len(y) != 4096 {
		t.Fatalf("GenerateFARIMA: %v len %d", err, len(y))
	}
	if _, err := GenerateFARIMA(0.7, 100, 1); err == nil {
		t.Error("bad d accepted")
	}

	// Local Whittle on the fGn path (short, so loose bound).
	est, err := EstimateHurstWhittle(x, LocalWhittleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.H < 0.6 || est.H > 1 {
		t.Errorf("Whittle H = %v on fGn(0.85)", est.H)
	}

	// TES baseline.
	alpha, err := TESCalibrateAlpha(0.8)
	if err != nil {
		t.Fatal(err)
	}
	marginal, err := NewEmpirical([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewTES(TESConfig{Alpha: alpha, Zeta: 0.5, Marginal: marginal}, NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if p := g.Path(100); len(p) != 100 {
		t.Fatal("TES path")
	}

	// ATM segmentation + superposition.
	cells, err := SegmentIntoCells([]float64{480, 96}, ATMCellPayload, 2)
	if err != nil || len(cells) != 4 {
		t.Fatalf("SegmentIntoCells: %v %v", err, cells)
	}
	super := Superposition{Base: TESSource{Cfg: TESConfig{Alpha: 0.3, Zeta: 0.5, Marginal: marginal}}, N: 4}
	if p := super.ArrivalPath(NewRand(4), 50); len(p) != 50 {
		t.Fatal("superposition path")
	}

	// Parametric marginal fitting.
	r := NewRand(5)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.Gamma(2, 1000)
	}
	if _, err := FitGammaPareto(sample, FitGammaOptions{}); err != nil {
		t.Fatalf("FitGammaPareto: %v", err)
	}
	if _, err := HillTailIndex(sample, 100); err != nil {
		t.Fatalf("HillTailIndex: %v", err)
	}
}

func TestPublicRefine(t *testing.T) {
	tr, err := GenerateMPEGTrace(MPEGTraceConfig{Frames: 1 << 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(tr.ByType(FrameI), FitOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Refine(RefineOptions{Rounds: 1, Replications: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("no refinement trajectory")
	}
}

func TestPublicFARIMAAndFriends(t *testing.T) {
	f, err := NewFARIMA(0.5, 0.3, -0.2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hurst() != 0.8 {
		t.Errorf("Hurst = %v", f.Hurst())
	}
	if f.At(0) != 1 || f.At(10) <= 0 {
		t.Error("bad FARIMA ACF")
	}
	emp := make([]float64, 120)
	for k := range emp {
		emp[k] = f.At(k)
	}
	got, sse, err := FitFARIMA(emp, FitFARIMAOptions{D: 0.3, MaxLag: 80, Grid: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || sse > 0.5 {
		t.Errorf("FitFARIMA sse=%v", sse)
	}

	// Batch means + KS.
	r := NewRand(6)
	arr := make([]float64, 50000)
	for i := range arr {
		arr[i] = r.Exp(1)
	}
	ci, err := TraceOverflowCI(arr, 1.3, 2, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Batches != 10 || ci.StdErr < 0 {
		t.Errorf("bad CI %+v", ci)
	}
	d, err := KolmogorovSmirnov(arr[:1000], arr[1000:2000])
	if err != nil || d < 0 || d > 1 {
		t.Errorf("KS = %v, %v", d, err)
	}

	// Norros from model params.
	params := NorrosParams{MeanRate: 100, VarCoeff: 1000, H: 0.8}
	p1, p2, err := params.OverflowProbability(130, 500)
	if err != nil || p1 <= 0 || p2 < p1 {
		t.Errorf("Norros: %v %v %v", p1, p2, err)
	}

	// Slice decomposition.
	tr, err := GenerateMPEGTrace(MPEGTraceConfig{Frames: 1200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := ToSlices(tr, SliceOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Len() != tr.Len()*15 {
		t.Errorf("slice count %d", sl.Len())
	}
}

func TestPublicWrapperCoverage(t *testing.T) {
	// Exercise the thin wrappers not touched elsewhere.
	x, err := GenerateFGN(0.8, 1<<15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateHurstVT(x, VarianceTimeOptions{}); err != nil {
		t.Errorf("EstimateHurstVT: %v", err)
	}
	if _, err := EstimateHurstRS(x, RSOptions{}); err != nil {
		t.Errorf("EstimateHurstRS: %v", err)
	}

	q := LindleyEvolve(0, []float64{5, 0, 3}, 2)
	if len(q) != 3 || q[0] != 3 {
		t.Errorf("LindleyEvolve = %v", q)
	}

	var src PathSource = PathSourceFunc(func(r *Rand, k int) []float64 {
		out := make([]float64, k)
		for i := range out {
			out[i] = 1
		}
		return out
	})
	res, err := EstimateOverflowMC(src, 2, 0.5, 10, MCOptions{Replications: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("deterministic underload overflowed: %v", res.P)
	}
}

func TestPublicTransform(t *testing.T) {
	marginal, err := NewEmpirical([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	h := NewTransform(marginal)
	if y := h.Apply(0); y < 1 || y > 10 {
		t.Errorf("h(0) = %v outside sample range", y)
	}
}
